module Codec = Iaccf_util.Codec
module Bitmap = Iaccf_util.Bitmap
module Schnorr = Iaccf_crypto.Schnorr
module D = Iaccf_crypto.Digest32

type pre_prepare = {
  view : int;
  seqno : int;
  m_root : D.t;
  g_root : D.t;
  nonce_com : D.t;
  ev_bitmap : Bitmap.t;
  gov_index : int;
  cp_digest : D.t;
  kind : Batch.kind;
  primary : int;
  signature : string;
}

type prepare = {
  p_view : int;
  p_seqno : int;
  p_replica : int;
  p_nonce_com : D.t;
  p_pp_hash : D.t;
  p_signature : string;
}

type commit = { c_view : int; c_seqno : int; c_replica : int; c_nonce : string }

type reply = {
  r_view : int;
  r_seqno : int;
  r_replica : int;
  r_signature : string;
  r_nonce : string;
}

type replyx = {
  x_pp : pre_prepare;
  x_tx : Batch.tx_entry;
  x_leaf_index : int;
  x_batch_size : int;
  x_path : D.t list;
}

type view_change = {
  vc_view : int;
  vc_replica : int;
  vc_last_prepared : pre_prepare list;
  vc_signature : string;
}

type new_view = {
  nv_view : int;
  nv_m_root : D.t;
  nv_vc_bitmap : Bitmap.t;
  nv_vc_hash : D.t;
  nv_primary : int;
  nv_signature : string;
}

let pre_prepare_payload ~view ~seqno ~m_root ~g_root ~nonce_com ~ev_bitmap
    ~gov_index ~cp_digest ~kind ~primary =
  D.of_string
    (Codec.encode (fun w ->
         Codec.W.raw w "iaccf-preprepare";
         Codec.W.u64 w view;
         Codec.W.u64 w seqno;
         Codec.W.raw w (D.to_raw m_root);
         Codec.W.raw w (D.to_raw g_root);
         Codec.W.raw w (D.to_raw nonce_com);
         Codec.W.raw w (Bitmap.encode ev_bitmap);
         Codec.W.u64 w gov_index;
         Codec.W.raw w (D.to_raw cp_digest);
         Batch.encode_kind w kind;
         Codec.W.u64 w primary))

let pp_hash (pp : pre_prepare) =
  pre_prepare_payload ~view:pp.view ~seqno:pp.seqno ~m_root:pp.m_root
    ~g_root:pp.g_root ~nonce_com:pp.nonce_com ~ev_bitmap:pp.ev_bitmap
    ~gov_index:pp.gov_index ~cp_digest:pp.cp_digest ~kind:pp.kind
    ~primary:pp.primary

let prepare_payload ~view ~seqno ~replica ~nonce_com ~pp_hash =
  D.of_string
    (Codec.encode (fun w ->
         Codec.W.raw w "iaccf-prepare";
         Codec.W.u64 w view;
         Codec.W.u64 w seqno;
         Codec.W.u64 w replica;
         Codec.W.raw w (D.to_raw nonce_com);
         Codec.W.raw w (D.to_raw pp_hash)))

let view_change_payload ~view ~replica ~last_prepared =
  D.of_string
    (Codec.encode (fun w ->
         Codec.W.raw w "iaccf-viewchange";
         Codec.W.u64 w view;
         Codec.W.u64 w replica;
         Codec.W.list w
           (fun pp -> Codec.W.raw w (D.to_raw (pp_hash pp)))
           last_prepared))

let new_view_payload ~view ~m_root ~vc_bitmap ~vc_hash ~primary =
  D.of_string
    (Codec.encode (fun w ->
         Codec.W.raw w "iaccf-newview";
         Codec.W.u64 w view;
         Codec.W.raw w (D.to_raw m_root);
         Codec.W.raw w (Bitmap.encode vc_bitmap);
         Codec.W.raw w (D.to_raw vc_hash);
         Codec.W.u64 w primary))

let with_pk config id k =
  match Config.replica_pk config id with None -> false | Some pk -> k pk

let verify_pre_prepare config (pp : pre_prepare) =
  pp.primary = Config.primary_of_view config pp.view
  && with_pk config pp.primary (fun pk ->
         Schnorr.verify pk (D.to_raw (pp_hash pp)) ~signature:pp.signature)

let verify_prepare config (p : prepare) =
  with_pk config p.p_replica (fun pk ->
      let payload =
        prepare_payload ~view:p.p_view ~seqno:p.p_seqno ~replica:p.p_replica
          ~nonce_com:p.p_nonce_com ~pp_hash:p.p_pp_hash
      in
      Schnorr.verify pk (D.to_raw payload) ~signature:p.p_signature)

let verify_view_change config (vc : view_change) =
  with_pk config vc.vc_replica (fun pk ->
      let payload =
        view_change_payload ~view:vc.vc_view ~replica:vc.vc_replica
          ~last_prepared:vc.vc_last_prepared
      in
      Schnorr.verify pk (D.to_raw payload) ~signature:vc.vc_signature)

let verify_new_view config (nv : new_view) =
  nv.nv_primary = Config.primary_of_view config nv.nv_view
  && with_pk config nv.nv_primary (fun pk ->
         let payload =
           new_view_payload ~view:nv.nv_view ~m_root:nv.nv_m_root
             ~vc_bitmap:nv.nv_vc_bitmap ~vc_hash:nv.nv_vc_hash
             ~primary:nv.nv_primary
         in
         Schnorr.verify pk (D.to_raw payload) ~signature:nv.nv_signature)

let encode_pre_prepare w (pp : pre_prepare) =
  Codec.W.u64 w pp.view;
  Codec.W.u64 w pp.seqno;
  Codec.W.raw w (D.to_raw pp.m_root);
  Codec.W.raw w (D.to_raw pp.g_root);
  Codec.W.raw w (D.to_raw pp.nonce_com);
  Codec.W.raw w (Bitmap.encode pp.ev_bitmap);
  Codec.W.u64 w pp.gov_index;
  Codec.W.raw w (D.to_raw pp.cp_digest);
  Batch.encode_kind w pp.kind;
  Codec.W.u64 w pp.primary;
  Codec.W.bytes w pp.signature

let decode_pre_prepare r : pre_prepare =
  let view = Codec.R.u64 r in
  let seqno = Codec.R.u64 r in
  let m_root = D.of_raw (Codec.R.raw r 32) in
  let g_root = D.of_raw (Codec.R.raw r 32) in
  let nonce_com = D.of_raw (Codec.R.raw r 32) in
  let ev_bitmap = Bitmap.decode (Codec.R.raw r 8) in
  let gov_index = Codec.R.u64 r in
  let cp_digest = D.of_raw (Codec.R.raw r 32) in
  let kind = Batch.decode_kind r in
  let primary = Codec.R.u64 r in
  let signature = Codec.R.bytes r in
  {
    view;
    seqno;
    m_root;
    g_root;
    nonce_com;
    ev_bitmap;
    gov_index;
    cp_digest;
    kind;
    primary;
    signature;
  }

let encode_prepare w (p : prepare) =
  Codec.W.u64 w p.p_view;
  Codec.W.u64 w p.p_seqno;
  Codec.W.u64 w p.p_replica;
  Codec.W.raw w (D.to_raw p.p_nonce_com);
  Codec.W.raw w (D.to_raw p.p_pp_hash);
  Codec.W.bytes w p.p_signature

let decode_prepare r : prepare =
  let p_view = Codec.R.u64 r in
  let p_seqno = Codec.R.u64 r in
  let p_replica = Codec.R.u64 r in
  let p_nonce_com = D.of_raw (Codec.R.raw r 32) in
  let p_pp_hash = D.of_raw (Codec.R.raw r 32) in
  let p_signature = Codec.R.bytes r in
  { p_view; p_seqno; p_replica; p_nonce_com; p_pp_hash; p_signature }

let encode_view_change w (vc : view_change) =
  Codec.W.u64 w vc.vc_view;
  Codec.W.u64 w vc.vc_replica;
  Codec.W.list w (encode_pre_prepare w) vc.vc_last_prepared;
  Codec.W.bytes w vc.vc_signature

let decode_view_change r : view_change =
  let vc_view = Codec.R.u64 r in
  let vc_replica = Codec.R.u64 r in
  let vc_last_prepared = Codec.R.list r decode_pre_prepare in
  let vc_signature = Codec.R.bytes r in
  { vc_view; vc_replica; vc_last_prepared; vc_signature }

let encode_new_view w (nv : new_view) =
  Codec.W.u64 w nv.nv_view;
  Codec.W.raw w (D.to_raw nv.nv_m_root);
  Codec.W.raw w (Bitmap.encode nv.nv_vc_bitmap);
  Codec.W.raw w (D.to_raw nv.nv_vc_hash);
  Codec.W.u64 w nv.nv_primary;
  Codec.W.bytes w nv.nv_signature

let decode_new_view r : new_view =
  let nv_view = Codec.R.u64 r in
  let nv_m_root = D.of_raw (Codec.R.raw r 32) in
  let nv_vc_bitmap = Bitmap.decode (Codec.R.raw r 8) in
  let nv_vc_hash = D.of_raw (Codec.R.raw r 32) in
  let nv_primary = Codec.R.u64 r in
  let nv_signature = Codec.R.bytes r in
  { nv_view; nv_m_root; nv_vc_bitmap; nv_vc_hash; nv_primary; nv_signature }

let encode_commit w (c : commit) =
  Codec.W.u64 w c.c_view;
  Codec.W.u64 w c.c_seqno;
  Codec.W.u64 w c.c_replica;
  Codec.W.bytes w c.c_nonce

let decode_commit r : commit =
  let c_view = Codec.R.u64 r in
  let c_seqno = Codec.R.u64 r in
  let c_replica = Codec.R.u64 r in
  let c_nonce = Codec.R.bytes r in
  { c_view; c_seqno; c_replica; c_nonce }

let encode_reply w (rp : reply) =
  Codec.W.u64 w rp.r_view;
  Codec.W.u64 w rp.r_seqno;
  Codec.W.u64 w rp.r_replica;
  Codec.W.bytes w rp.r_signature;
  Codec.W.bytes w rp.r_nonce

let decode_reply r : reply =
  let r_view = Codec.R.u64 r in
  let r_seqno = Codec.R.u64 r in
  let r_replica = Codec.R.u64 r in
  let r_signature = Codec.R.bytes r in
  let r_nonce = Codec.R.bytes r in
  { r_view; r_seqno; r_replica; r_signature; r_nonce }

let encode_replyx w (x : replyx) =
  encode_pre_prepare w x.x_pp;
  Batch.encode_tx_entry w x.x_tx;
  Codec.W.u64 w x.x_leaf_index;
  Codec.W.u64 w x.x_batch_size;
  Codec.W.list w (fun d -> Codec.W.raw w (D.to_raw d)) x.x_path

let decode_replyx r : replyx =
  let x_pp = decode_pre_prepare r in
  let x_tx = Batch.decode_tx_entry r in
  let x_leaf_index = Codec.R.u64 r in
  let x_batch_size = Codec.R.u64 r in
  let x_path = Codec.R.list r (fun r -> D.of_raw (Codec.R.raw r 32)) in
  { x_pp; x_tx; x_leaf_index; x_batch_size; x_path }

let serialize_pre_prepare pp = Codec.encode (fun w -> encode_pre_prepare w pp)

let pre_prepare_equal a b =
  String.equal (serialize_pre_prepare a) (serialize_pre_prepare b)

let pp_pre_prepare ppf (pp : pre_prepare) =
  Format.fprintf ppf "pp{v=%d;s=%d;kind=%a;G=%a}" pp.view pp.seqno Batch.pp_kind
    pp.kind D.pp pp.g_root
