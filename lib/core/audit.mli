(** Auditing (§4.1, Alg. 4; §5.3, Appx. B).

    Given a collection of receipts and a ledger obtained through the
    enforcer, the auditor (anyone — the ledger is universally verifiable):

    + validates the receipts and their supporting governance chain,
      detecting governance forks (Lemma 7) and contradictory "tied"
      receipts;
    + checks the ledger is {e well-formed}: the structural shape of Fig. 3,
      evidence quorums whose signatures verify and whose nonces open their
      commitments, per-batch Merkle roots that match the recorded
      transactions, and view-change/new-view entries that justify every
      view;
    + checks each receipt appears in the ledger, assigning blame by the
      three view cases of Lemma 5 when it does not; and
    + replays transactions from a checkpoint, comparing outputs and
      write-set hashes, blaming every signer of a misexecuted batch.

    Any failure yields a universal proof-of-misbehavior naming at least
    [f+1] replicas (or the responding replica, for a malformed response). *)

module Config = Iaccf_types.Config
module Genesis = Iaccf_types.Genesis
module Ledger = Iaccf_ledger.Ledger
module Checkpoint = Iaccf_kv.Checkpoint
module Bitmap = Iaccf_util.Bitmap

type upom =
  | Invalid_receipt of { ir_receipt : Receipt.t; ir_reason : string }
      (** a receipt that fails Alg. 3 verification; no replica blamed *)
  | Tied_receipts of { tr_first : Receipt.t; tr_second : Receipt.t }
      (** contradictory receipts for the same slot — signed by both quorums *)
  | Governance_fork of { gf_first : Receipt.t; gf_second : Receipt.t }
      (** non-equivalent P-th end-of-config receipts (Lemma 7) *)
  | Malformed_ledger of { ml_responder : int; ml_reason : string; ml_index : int }
      (** structural violation at a ledger index; blames the responder *)
  | Receipt_not_in_ledger of {
      rn_receipt : Receipt.t;
      rn_case : [ `Same_view | `Ledger_view_higher | `Receipt_view_higher ];
      rn_reason : string;
    }
  | Wrong_execution of { we_index : int; we_seqno : int; we_reason : string }
      (** replay diverged from the recorded result at a ledger index *)

type verdict = {
  v_upom : upom;
  v_blamed_replicas : Bitmap.t;
  v_blamed_members : string list;  (** operators of the blamed replicas *)
}

type t

val create :
  genesis:Genesis.t ->
  app:App.t ->
  pipeline:int ->
  checkpoint_interval:int ->
  t

val set_verify_domains : t -> int -> unit
(** With a value > 1 (default 0: sequential), the audit's bulk
    client-signature sweep — up to [max_batch] Schnorr checks per replayed
    batch — fans across that many OCaml domains via the verify pool.
    Verdicts are identical either way; only wall-clock time changes. *)

val add_gov_receipts : t -> Receipt.t list -> (unit, verdict) result
(** Feed the supporting governance chain; a fork yields a verdict. *)

val audit :
  t ->
  receipts:Receipt.t list ->
  ledger:Ledger.t ->
  ?checkpoint:Checkpoint.t ->
  responder:int ->
  unit ->
  (unit, verdict) result
(** Run the full audit of the receipts against a ledger provided by
    [responder]. [Ok ()] means no misbehavior was detected. When a
    [checkpoint] is supplied, replay starts at its sequence number instead
    of genesis (the checkpoint digest is verified against the ledger). *)

val pp_upom : Format.formatter -> upom -> unit
val pp_verdict : Format.formatter -> verdict -> unit
