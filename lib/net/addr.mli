(** Socket addresses for the transport: [unix:PATH] or [tcp:HOST:PORT]. *)

type t = Unix_sock of string | Tcp of string * int

val to_string : t -> string
val of_string : string -> (t, string) result

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed address. *)

val sockaddr : t -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr] (TCP hostnames resolved here).
    @raise Invalid_argument if the host cannot be resolved. *)

val domain : t -> Unix.socket_domain

val prepare_bind : t -> unit
(** Remove a stale unix-socket file before binding; no-op for TCP. *)
