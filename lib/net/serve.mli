(** One replica as an OS process (the [iaccf serve] runtime).

    Runs the unmodified simulator replica on a private scheduler whose
    virtual clock is slaved to the wall clock, with the socket endpoint
    as its gateway to the rest of the fleet. Identity (genesis, keys) is
    derived from the manifest seed, so processes need no coordination
    beyond the shared manifest file. *)

type t

val socket_params : Iaccf_core.Replica.params
(** Simulator defaults with the view-change timeout widened to 5 s:
    with the virtual clock slaved to the wall, timer constants are real
    durations, and the simulator's 400 ms election timeout fires during
    honest (CPU-bound) progress on a loaded machine. *)

val create :
  ?params:Iaccf_core.Replica.params ->
  ?obs:Iaccf_obs.Obs.t ->
  manifest:Manifest.t ->
  id:int ->
  unit ->
  t
(** Build and start the replica, bind the listen socket, dial peers.
    Default [obs] is a metrics-enabled registry (its snapshot is the
    process's exit artifact). @raise Invalid_argument if [id] has no
    manifest entry. *)

val step : ?max_wait_ms:float -> t -> unit
(** One event-loop turn: advance the virtual clock to the wall clock,
    then poll the endpoint until the next timer is due (capped at
    [max_wait_ms], default 20). *)

val run_until : ?timeout_ms:float -> t -> (unit -> bool) -> bool
(** Step until the predicate holds, {!request_stop} was called, or the
    timeout elapses; returns the predicate's final value. *)

val request_stop : t -> unit
(** Make {!run_until} return after the current step (signal-safe). *)

val shutdown : ?metrics_file:string -> t -> unit
(** Flush queued output (bounded), record [serve.last_committed], write
    the metrics snapshot, close sockets. *)

val main :
  ?params:Iaccf_core.Replica.params ->
  manifest:Manifest.t ->
  id:int ->
  unit ->
  int
(** The [iaccf serve] process body: run until SIGTERM/SIGINT, write
    [<dir>/replica-<id>.metrics], return the final committed seqno. *)

val replica : t -> Iaccf_core.Replica.t
val endpoint : t -> Endpoint.t
val obs : t -> Iaccf_obs.Obs.t
