(** A verifying read client for the observer tier.

    Observers are outside the trust boundary: this reader accepts an
    observer's answer only after re-deriving everything locally. For a
    read it recomputes the write-set hash from the supplied write set,
    checks the served value is the one the writing transaction installed,
    verifies the accompanying receipt against the service configuration
    (fetching governance sub-ledger receipts across reconfigurations,
    §5.2), and enforces a freshness floor — the writing transaction's
    ledger index must be at least [min_index], so an observer replaying
    old state is detected, not believed. For a status poll it tracks the
    per-ID status state machine and counts any transition the stable
    semantics forbid (COMMITTED <-> INVALID, PENDING -> UNKNOWN). *)

open Iaccf_core

type read_result = {
  rd_key : string;
  rd_value : string option;
  rd_verified : bool;
      (** receipt checked against the service quorum AND the value bound
          to the writing transaction's write set AND fresh enough *)
  rd_index : int option;  (** writing transaction's ledger index *)
  rd_receipt : Receipt.t option;
  rd_error : string option;
      (** why verification failed ([None] for a clean unverified answer,
          e.g. an absent key, which carries no evidence to check) *)
}

type audit_result = {
  au_index : int;  (** ledger index the path vouches for *)
  au_leaf : Iaccf_crypto.Digest32.t;
  au_root : Iaccf_crypto.Digest32.t;
  au_ok : bool;  (** the path reproduces [au_root] from the leaf *)
}

type t

val create :
  address:int ->
  genesis:Iaccf_types.Genesis.t ->
  pipeline:int ->
  sched:Iaccf_sim.Sched.t ->
  network:Wire.t Iaccf_sim.Network.t ->
  ?obs:Iaccf_obs.Obs.t ->
  unit ->
  t

val address : t -> int
val govchain : t -> Govchain.t

val read :
  t -> observer:int -> key:string -> ?min_index:int -> (read_result -> unit) -> unit
(** Ask an observer for a key. [min_index] is the freshness floor —
    typically [oc_index] from the reader's own write receipt (or a
    client's {!Client.min_index}); a verified answer whose writer sits
    below it is reported as stale, never as verified. *)

val poll_status : t -> observer:int -> txid:Status.txid -> unit
(** Fire one status query; the answer lands in the per-ID tracking table
    (see {!last_status}, {!status_violations}). *)

val last_status : t -> txid:Status.txid -> Status.t
(** Latest status an observer reported for the ID (UNKNOWN if never
    polled). *)

val wait_for_commit :
  t ->
  observer:int ->
  txid:Status.txid ->
  ?deadline_ms:float ->
  ?initial_backoff_ms:float ->
  (Status.t -> unit) ->
  unit
(** Poll an observer for a transaction ID with exponential backoff
    (doubling from [initial_backoff_ms], capped at 500 ms) until the
    status is terminal — COMMITTED or INVALID — or the deadline passes,
    in which case the callback gets the last non-terminal answer
    (PENDING/UNKNOWN). Mirrors CCF's client-side commit confirmation. *)

val fetch_audit_path :
  t -> observer:int -> index:int -> (audit_result -> unit) -> unit
(** Ask an observer for the Merkle inclusion path of a ledger entry and
    check the path actually reproduces the claimed root. *)

val verified_reads : t -> int
val failed_verifications : t -> int

val stale_detected : t -> int
(** Answers that verified cryptographically but whose writer index was
    below the freshness floor — the stale-observer detection count. *)

val status_violations : t -> int
(** Observer status answers that violated {!Status.transition_ok} for an
    ID this reader had polled before. *)
