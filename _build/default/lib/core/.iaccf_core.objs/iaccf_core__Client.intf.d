lib/core/client.mli: Govchain Iaccf_crypto Iaccf_sim Iaccf_types Receipt Wire
