(** Binary codec for {!Wire.t}: one tag byte per variant, payloads in the
    canonical {!Iaccf_util.Codec} encoding. This is what the socket
    transport puts on the wire (inside a CRC frame); the simulator passes
    [Wire.t] values in memory and never pays for it.

    Decoders raise {!Iaccf_util.Codec.Decode_error} on malformed input —
    they never crash or over-read. Tag numbers are wire format: append
    variants, never renumber. *)

val encode_msg : Iaccf_util.Codec.W.t -> Wire.t -> unit
val decode_msg : Iaccf_util.Codec.R.t -> Wire.t

val serialize : Wire.t -> string

val deserialize : string -> Wire.t
(** @raise Iaccf_util.Codec.Decode_error on malformed or trailing bytes. *)

val envelope_version : int

val encode_envelope : src:int -> dst:int -> Wire.t -> string
(** The process-to-process frame payload: version, simulator-network
    source and destination addresses, then the message. *)

val decode_envelope : string -> int * int * Wire.t
(** [(src, dst, msg)].
    @raise Iaccf_util.Codec.Decode_error on malformed input or a version
    mismatch. *)
