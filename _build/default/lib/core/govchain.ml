module Config = Iaccf_types.Config
module Genesis = Iaccf_types.Genesis
module Message = Iaccf_types.Message
module Batch = Iaccf_types.Batch
module Request = Iaccf_types.Request
module D = Iaccf_crypto.Digest32

type t = {
  gen : Genesis.t;
  service_hash : D.t;
  pipeline : int;
  (* (activation_seqno, config): config is active for seqnos strictly
     greater than activation_seqno; ascending. *)
  mutable configs : (int * Config.t) list;
  mutable chain : Receipt.t list; (* newest first *)
  mutable last_gov_index : int;
  proposals : (string, Config.t) Hashtbl.t;
  (* config_no of the configuration being ended -> P-th end-of-config
     receipt seen, for fork detection (Lemma 7). *)
  eoc_receipts : (int, Receipt.t) Hashtbl.t;
}

let create gen ~pipeline =
  {
    gen;
    service_hash = Genesis.hash gen;
    pipeline;
    configs = [ (0, gen.Genesis.initial_config) ];
    chain = [];
    last_gov_index = 0;
    proposals = Hashtbl.create 4;
    eoc_receipts = Hashtbl.create 4;
  }

let genesis t = t.gen
let service t = t.service_hash
let receipts t = List.rev t.chain
let last_gov_index t = t.last_gov_index

let config_for_seqno t s =
  let rec go acc = function
    | [] -> acc
    | (activation, cfg) :: rest -> if s > activation then go cfg rest else acc
  in
  match t.configs with
  | (_, first) :: rest -> go first rest
  | [] -> assert false

let latest_config t =
  match List.rev t.configs with (_, cfg) :: _ -> cfg | [] -> assert false

let verify_receipt t r =
  let config = config_for_seqno t (Receipt.seqno r) in
  Receipt.verify ~config ~service:t.service_hash r

let already_have t r = List.exists (Receipt.equal r) t.chain

let add_receipt t r =
  if already_have t r then Ok ()
  else begin
    match verify_receipt t r with
    | Error _ as e -> e
    | Ok () -> (
        match r.Receipt.subject with
        | Receipt.Tx_subject { tx; _ } -> (
            let req = tx.Batch.request in
            let output = App.decode_output tx.Batch.result.Batch.output in
            t.chain <- r :: t.chain;
            t.last_gov_index <- max t.last_gov_index tx.Batch.index;
            match (req.Request.proc, output) with
            | "gov/propose", Ok id -> (
                match Config.deserialize req.Request.args with
                | exception _ -> Error "propose receipt with undecodable configuration"
                | proposed ->
                    Hashtbl.replace t.proposals id proposed;
                    Ok ())
            | "gov/vote", Ok "passed" -> (
                match Hashtbl.find_opt t.proposals req.Request.args with
                | None -> Error "passed vote for an unknown proposal"
                | Some new_config ->
                    let activation = Receipt.seqno r + (2 * t.pipeline) in
                    t.configs <- t.configs @ [ (activation, new_config) ];
                    Ok ())
            | _, _ -> Ok ())
        | Receipt.Batch_subject -> (
            match r.Receipt.pp.Message.kind with
            | Batch.End_of_config { phase; _ } when phase = t.pipeline -> (
                let ending = (config_for_seqno t (Receipt.seqno r)).Config.config_no in
                match Hashtbl.find_opt t.eoc_receipts ending with
                | Some prev when not (Receipt.equal prev r) ->
                    Error "governance fork: conflicting end-of-config receipts"
                | Some _ -> Ok ()
                | None ->
                    Hashtbl.replace t.eoc_receipts ending r;
                    t.chain <- r :: t.chain;
                    Ok ())
            | Batch.End_of_config _ | Batch.Regular | Batch.Checkpoint _
            | Batch.Start_of_config _ ->
                (* Not part of the governance sub-ledger; ignore. *)
                Ok ()))
  end

let sync_from t rs =
  let sorted =
    List.sort
      (fun a b ->
        match compare (Receipt.seqno a) (Receipt.seqno b) with
        | 0 -> compare (Receipt.index a) (Receipt.index b)
        | c -> c)
      rs
  in
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> add_receipt t r)
    (Ok ()) sorted
