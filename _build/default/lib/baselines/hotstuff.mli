(** Chained HotStuff [62], the baseline of Tab. 2, Fig. 5, and Tab. 3.

    A faithful-in-shape implementation: rotating leaders propose blocks
    extending the highest quorum certificate, replicas send one signed vote
    per block to the next leader, and a block commits when it heads a
    three-chain of consecutive certified blocks. Replies reach clients
    after commit — ~4.5 network round trips versus IA-CCF's 2 (Tab. 2).
    No ledger or key-value store is maintained, matching the paper's
    description of the baseline. *)

type command = {
  c_id : Iaccf_crypto.Digest32.t;
  c_payload : string;
  c_client : int;
  c_sig : string;  (** client signature over the command id *)
}

type msg =
  | Cmd of command
  | Proposal of block
  | Vote of { v_height : int; v_block : Iaccf_crypto.Digest32.t; v_replica : int; v_sig : string }
  | NewQc of qc
  | HsReply of { r_cmd : Iaccf_crypto.Digest32.t; r_replica : int }

and block
and qc

type cluster

val spawn :
  n:int ->
  ?max_batch:int ->
  sched:Iaccf_sim.Sched.t ->
  network:msg Iaccf_sim.Network.t ->
  seed:int ->
  unit ->
  cluster
(** Create and register [n] replicas (addresses [0..n-1]). *)

val committed_commands : cluster -> int
val signatures_made : cluster -> int
val signatures_verified : cluster -> int

(** {1 Client} *)

type client

val client :
  cluster ->
  address:int ->
  sched:Iaccf_sim.Sched.t ->
  network:msg Iaccf_sim.Network.t ->
  client

val submit : client -> payload:string -> on_complete:(latency_ms:float -> unit) -> unit
(** Completion fires on [f+1] matching replies. *)

val client_completed : client -> int
val client_latencies : client -> float list
