(* Limbs are little-endian, base 2^24, stored in normalized arrays (no
   leading zero limbs; zero is the empty array). 24-bit limbs keep every
   intermediate product (48 bits) and carry chain within a 63-bit int. *)

let base_bits = 24
let limb_mask = 0xFFFFFF

type t = int array

let zero : t = [||]
let one : t = [| 1 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int x =
  if x < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs x = if x = 0 then [] else (x land limb_mask) :: limbs (x lsr base_bits) in
  Array.of_list (limbs x)

let to_int_opt a =
  (* At most 62 bits fit safely. *)
  if Array.length a > 3 then None
  else begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end

let is_zero a = Array.length a = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  out.(n) <- !carry;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_mask + 1;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land limb_mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    normalize out
  end

let mul_small a m =
  if m < 0 || m >= 1 lsl 30 then invalid_arg "Bignum.mul_small: multiplier range";
  if m = 0 || Array.length a = 0 then zero
  else begin
    let la = Array.length a in
    let out = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) * m) + !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr base_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      out.(!k) <- !carry land limb_mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    normalize out
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width x = if x = 0 then 0 else 1 + width (x lsr 1) in
    ((n - 1) * base_bits) + width top
  end

let test_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let shift_left a n =
  if n < 0 then invalid_arg "Bignum.shift_left";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr base_bits
    done;
    normalize out
  end

let shift_right a n =
  if n < 0 then invalid_arg "Bignum.shift_right";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let ln = la - limbs in
      let out = Array.make ln 0 in
      for i = 0 to ln - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if bits = 0 || i + limbs + 1 >= la then 0
          else (a.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask
        in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

let mask_bits a n =
  if n < 0 then invalid_arg "Bignum.mask_bits";
  let limbs = n / base_bits and bits = n mod base_bits in
  let la = Array.length a in
  if bit_length a <= n then a
  else begin
    let ln = min la (limbs + if bits > 0 then 1 else 0) in
    let out = Array.sub a 0 ln in
    if bits > 0 && limbs < ln then out.(limbs) <- out.(limbs) land ((1 lsl bits) - 1);
    normalize out
  end

let set_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  let la = Array.length a in
  let out = Array.make (max la (limb + 1)) 0 in
  Array.blit a 0 out 0 la;
  out.(limb) <- out.(limb) lor (1 lsl off);
  out

(* Binary long division: O(bit_length a - bit_length b) subtract/compare
   steps. Operands in this codebase are close in size (modular reductions),
   so the loop count is small. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let q = ref zero and r = ref a and d = ref (shift_left b shift) in
    for i = shift downto 0 do
      if compare !r !d >= 0 then begin
        r := sub !r !d;
        q := set_bit !q i
      end;
      d := shift_right !d 1
    done;
    (!q, !r)
  end

let rem a b = snd (divmod a b)

let mod_pow b e m =
  if is_zero m then raise Division_by_zero;
  if equal m one then zero
  else begin
    let result = ref one and base = ref (rem b m) in
    let nbits = bit_length e in
    for i = 0 to nbits - 1 do
      if test_bit e i then result := rem (mul !result !base) m;
      if i < nbits - 1 then base := rem (mul !base !base) m
    done;
    !result
  end

let of_bytes_be s =
  let n = String.length s in
  let v = ref zero in
  for i = 0 to n - 1 do
    v := add (shift_left !v 8) (of_int (Char.code s.[i]))
  done;
  !v

let to_bytes_be a =
  let bl = bit_length a in
  let nbytes = max 1 ((bl + 7) / 8) in
  let out = Bytes.create nbytes in
  for i = 0 to nbytes - 1 do
    let byte_index = nbytes - 1 - i in
    let v =
      (if test_bit a ((8 * i) + 0) then 1 else 0)
      lor (if test_bit a ((8 * i) + 1) then 2 else 0)
      lor (if test_bit a ((8 * i) + 2) then 4 else 0)
      lor (if test_bit a ((8 * i) + 3) then 8 else 0)
      lor (if test_bit a ((8 * i) + 4) then 16 else 0)
      lor (if test_bit a ((8 * i) + 5) then 32 else 0)
      lor (if test_bit a ((8 * i) + 6) then 64 else 0)
      lor if test_bit a ((8 * i) + 7) then 128 else 0
    in
    Bytes.set out byte_index (Char.chr v)
  done;
  Bytes.unsafe_to_string out

let to_bytes_be_fixed len a =
  let s = to_bytes_be a in
  let s = if s = "\x00" && len > 0 then "" else s in
  let n = String.length s in
  if n > len then invalid_arg "Bignum.to_bytes_be_fixed: value too large";
  String.make (len - n) '\x00' ^ s

let of_hex h =
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  of_bytes_be (Iaccf_util.Hex.decode h)

let to_hex a = Iaccf_util.Hex.encode (to_bytes_be a)
let pp ppf a = Format.pp_print_string ppf (to_hex a)
