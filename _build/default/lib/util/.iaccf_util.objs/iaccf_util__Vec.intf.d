lib/util/vec.mli:
