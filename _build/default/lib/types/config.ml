module Codec = Iaccf_util.Codec
module Schnorr = Iaccf_crypto.Schnorr
module D = Iaccf_crypto.Digest32

type member = { member_name : string; member_pk : Schnorr.public_key }

type replica_info = {
  replica_id : int;
  operator : string;
  replica_pk : Schnorr.public_key;
  endorsement : string;
}

type t = {
  config_no : int;
  members : member list;
  replicas : replica_info list;
  vote_threshold : int;
}

let n_replicas t = List.length t.replicas
let f t = ((n_replicas t + 2) / 3) - 1
let quorum t = n_replicas t - f t
let replica_ids_sorted t =
  List.sort compare (List.map (fun r -> r.replica_id) t.replicas)

let primary_of_view t view = List.nth (replica_ids_sorted t) (view mod n_replicas t)
let replica t id = List.find_opt (fun r -> r.replica_id = id) t.replicas
let replica_pk t id = Option.map (fun r -> r.replica_pk) (replica t id)
let member t name = List.find_opt (fun m -> m.member_name = name) t.members
let operator_of_replica t id = Option.map (fun r -> r.operator) (replica t id)

let is_member_pk t pk =
  List.exists (fun m -> Schnorr.public_key_equal m.member_pk pk) t.members

let endorsement_payload t ~replica_id ~pk =
  D.of_string
    (Codec.encode (fun w ->
         Codec.W.raw w "iaccf-endorse";
         Codec.W.u64 w t.config_no;
         Codec.W.u64 w replica_id;
         Codec.W.bytes w (Schnorr.public_key_to_bytes pk)))

let validate t =
  let n = n_replicas t in
  let ids = replica_ids_sorted t in
  let rec distinct = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a <> b && distinct rest
  in
  let ids_ok =
    distinct ids
    && List.for_all (fun i -> i >= 0 && i < Iaccf_util.Bitmap.max_replicas) ids
  in
  if n = 0 then Error "no replicas"
  else if not ids_ok then Error "replica ids must be distinct and below 64"
  else if t.vote_threshold <= 0 || t.vote_threshold > List.length t.members then
    Error "vote threshold out of range"
  else begin
    let bad_operator =
      List.find_opt (fun r -> not (List.exists (fun m -> m.member_name = r.operator) t.members)) t.replicas
    in
    match bad_operator with
    | Some r -> Error (Printf.sprintf "replica %d has unknown operator %s" r.replica_id r.operator)
    | None ->
        let bad_endorsement =
          List.find_opt
            (fun r ->
              match member t r.operator with
              | None -> true
              | Some m ->
                  not
                    (Schnorr.verify m.member_pk
                       (D.to_raw (endorsement_payload t ~replica_id:r.replica_id ~pk:r.replica_pk))
                       ~signature:r.endorsement))
            t.replicas
        in
        (match bad_endorsement with
        | Some r -> Error (Printf.sprintf "replica %d has an invalid endorsement" r.replica_id)
        | None -> Ok ())
  end

let encode w t =
  Codec.W.u64 w t.config_no;
  Codec.W.list w
    (fun m ->
      Codec.W.bytes w m.member_name;
      Codec.W.bytes w (Schnorr.public_key_to_bytes m.member_pk))
    t.members;
  Codec.W.list w
    (fun r ->
      Codec.W.u64 w r.replica_id;
      Codec.W.bytes w r.operator;
      Codec.W.bytes w (Schnorr.public_key_to_bytes r.replica_pk);
      Codec.W.bytes w r.endorsement)
    t.replicas;
  Codec.W.u64 w t.vote_threshold

let decode_pk s =
  match Schnorr.public_key_of_bytes s with
  | Some pk -> pk
  | None -> raise (Codec.Decode_error "invalid public key")

let decode r =
  let config_no = Codec.R.u64 r in
  let members =
    Codec.R.list r (fun r ->
        let member_name = Codec.R.bytes r in
        let member_pk = decode_pk (Codec.R.bytes r) in
        { member_name; member_pk })
  in
  let replicas =
    Codec.R.list r (fun r ->
        let replica_id = Codec.R.u64 r in
        let operator = Codec.R.bytes r in
        let replica_pk = decode_pk (Codec.R.bytes r) in
        let endorsement = Codec.R.bytes r in
        { replica_id; operator; replica_pk; endorsement })
  in
  let vote_threshold = Codec.R.u64 r in
  { config_no; members; replicas; vote_threshold }

let serialize t = Codec.encode (fun w -> encode w t)
let deserialize s = Codec.decode s decode
let digest t = D.of_string (serialize t)
let equal a b = String.equal (serialize a) (serialize b)

let pp ppf t =
  Format.fprintf ppf "config#%d{N=%d;members=%d;threshold=%d}" t.config_no
    (n_replicas t) (List.length t.members) t.vote_threshold
