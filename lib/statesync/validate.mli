(** Pre-install validation of a fetched ledger suffix.

    Before a replica destructively adopts (snapshot, suffix) it replays the
    suffix's bookkeeping — never its transactions — against a throwaway
    copy of its ledger tree, checking everything the real skip-region
    adoption would check. A suffix that passes cannot abort the adoption
    halfway; one that fails is rejected with the tree untouched and the
    peer can be re-targeted. *)

val sigs_to_check :
  cp_seqno:int ->
  Iaccf_ledger.Entry.t list ->
  Iaccf_types.Message.pre_prepare list
(** The pre-prepares whose signatures {!check_suffix} will verify
    (checkpoint-kind batches at or below [cp_seqno]), in suffix order —
    lets a caller with a batched verify pool warm its result cache before
    the sequential walk. *)

val check_suffix :
  tree:Iaccf_merkle.Tree.t ->
  next_seqno:int ->
  cp_seqno:int ->
  verify_pp:(Iaccf_types.Message.pre_prepare -> bool) ->
  Iaccf_ledger.Entry.t list ->
  (unit, string) result
(** [check_suffix ~tree ~next_seqno ~cp_seqno ~verify_pp entries] walks
    [entries] (the ledger contents from the caller's current length
    onward) batch by batch, mutating [tree] — pass a copy. Batches up to
    and including [cp_seqno] must be contiguous from [next_seqno],
    reproduce the signed [m_root] chain and per-batch [g_root], and carry
    a valid primary signature on checkpoint batches ([verify_pp]).
    Batches past [cp_seqno] are not inspected: the installer re-executes
    those, and execution is batch-atomic on its own. [Error] if the
    suffix is malformed, diverges, or ends before sealing [cp_seqno]. *)
