lib/types/genesis.ml: Config Iaccf_crypto Iaccf_util
