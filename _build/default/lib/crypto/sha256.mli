(** SHA-256 (FIPS 180-4), pure OCaml.

    Substitute for the EverCrypt SHA functions used by the paper's prototype;
    tested against the NIST test vectors. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit

val finalize : ctx -> string
(** 32-byte digest. The context must not be reused afterwards. *)

val digest : string -> string
(** [digest s] is the 32-byte SHA-256 digest of [s]. *)

val digest_concat : string list -> string
(** [digest_concat parts] hashes the concatenation of [parts] without
    building the intermediate string. *)
