module Message = Iaccf_types.Message
module Batch = Iaccf_types.Batch
module Schnorr = Iaccf_crypto.Schnorr
module D = Iaccf_crypto.Digest32
module Wire = Iaccf_core.Wire

type behaviour =
  | Equivocate_pre_prepares
  | Tamper_replyx
  | Withhold_nonces
  | Corrupt_view_changes
  | Mute

let behaviour_name = function
  | Equivocate_pre_prepares -> "equivocate-pre-prepares"
  | Tamper_replyx -> "tamper-replyx"
  | Withhold_nonces -> "withhold-nonces"
  | Corrupt_view_changes -> "corrupt-view-changes"
  | Mute -> "mute"

(* A validly signed pre-prepare for the same (view, seqno) committing to a
   different ledger root: real equivocation, not a broken signature. *)
let equivocate_pp ~sk (pp : Message.pre_prepare) =
  let m_root = D.of_string ("equivocation:" ^ D.to_hex pp.Message.m_root) in
  let payload =
    Message.pre_prepare_payload ~view:pp.Message.view ~seqno:pp.Message.seqno
      ~m_root ~g_root:pp.Message.g_root ~nonce_com:pp.Message.nonce_com
      ~ev_bitmap:pp.Message.ev_bitmap ~gov_index:pp.Message.gov_index
      ~cp_digest:pp.Message.cp_digest ~kind:pp.Message.kind
      ~primary:pp.Message.primary
  in
  {
    pp with
    Message.m_root;
    signature = Schnorr.sign sk (D.to_raw payload);
  }

let tamper_replyx (x : Message.replyx) =
  let tx = x.Message.x_tx in
  let result = { tx.Batch.result with Batch.output = tx.Batch.result.Batch.output ^ "+tampered" } in
  { x with Message.x_tx = { tx with Batch.result = result } }

let intercept ~sk ~client_base behaviour ~dst (msg : Wire.t) =
  match (behaviour, msg) with
  | Equivocate_pre_prepares, Wire.Pre_prepare_msg { pp; batch } ->
      (* Split the backups: odd destinations get a conflicting, validly
         signed twin. Safety must hold anyway — at most one root can gather
         a quorum. *)
      if dst land 1 = 1 then [ (dst, Wire.Pre_prepare_msg { pp = equivocate_pp ~sk pp; batch }) ]
      else [ (dst, msg) ]
  | Tamper_replyx, Wire.Replyx_msg x when dst >= client_base ->
      [ (dst, Wire.Replyx_msg (tamper_replyx x)) ]
  | Withhold_nonces, (Wire.Commit_msg _ | Wire.Reply_msg _) -> []
  | Corrupt_view_changes, Wire.View_change_msg vc ->
      [ (dst, Wire.View_change_msg { vc with Message.vc_signature = "corrupt" }) ]
  | Mute, _ -> []
  | ( ( Equivocate_pre_prepares | Tamper_replyx | Withhold_nonces
      | Corrupt_view_changes ),
      _ ) ->
      [ (dst, msg) ]
