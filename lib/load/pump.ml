let closed_loop ~total ~concurrency ~submit () =
  let submitted = ref 0 and completed = ref 0 in
  let rec submit_one () =
    if !submitted < total then begin
      incr submitted;
      submit ~seq:!submitted ~on_complete:(fun () ->
          incr completed;
          submit_one ())
    end
  in
  for _ = 1 to concurrency do
    submit_one ()
  done;
  (submitted, completed)

let waves ~total ~concurrency ~submit ~await =
  let submitted = ref 0 in
  let ok = ref true in
  while !ok && !submitted < total do
    let wave = min concurrency (total - !submitted) in
    for _ = 1 to wave do
      incr submitted;
      submit ~seq:!submitted
    done;
    ok := await ~target:!submitted
  done;
  (!ok, !submitted)
