examples/quickstart.ml: App Audit Client Cluster Format Iaccf_core Iaccf_types List Printf Receipt Replica
