(* @crypto-bench: the signature-verification pipeline microbench.

   The headline comparison mirrors the replica hot path this PR rewires:
   every client signature is checked ~3 times per lifecycle — once at
   delivery, once by the audit bulk re-check, once by observer suffix
   revalidation. Inline, that is three full Schnorr.verify calls on an
   untabled key; through the batched Vstage (4 domains) it is one
   accelerated verification (fixed-base tables, pool dispatch) plus two
   LRU cache hits. speedup_batched_vs_inline is the acceptance number
   (>= 2x); it holds even on a single-CPU host, where the domain fan-out
   adds no parallelism and the win is purely tables + cache.

   Component microbenches (inline / pooled / tabled / cached throughput
   on a one-shot job mix) are also reported, informationally — on a
   single CPU the pooled figure is *below* inline (queue overhead with no
   parallel hardware), which is exactly why the stage keeps the cache and
   tables in front of the pool.

   Writes BENCH_crypto.json through the report layer's row emitter:
   deterministic counts gate Exact, wall-clock throughputs are Info. Not
   part of the default @runtest (wall-clock heavy); run with
   `dune build @crypto-bench`, or `dune exec bench/crypto.exe` from the
   repo root to keep the JSON. *)

open Iaccf_crypto
module Report = Iaccf_report.Report

let n_keys = 8
let n_jobs = 256
let domains = 4
let lifecycle_checks = 3 (* delivery + audit re-check + observer revalidation *)

let make_keys prefix =
  Array.init n_keys (fun i -> Schnorr.keypair_of_seed (Printf.sprintf "%s-%d" prefix i))

(* A fixed job mix over [keys]: round-robin keys, every 16th signature
   corrupted so the reject path is exercised too. Fully deterministic. *)
let make_jobs keys =
  List.init n_jobs (fun i ->
      let sk, pk = keys.(i mod n_keys) in
      let digest = Sha256.digest (Printf.sprintf "msg-%d" i) in
      let signature =
        if i mod 16 = 15 then String.make 64 '\x2a' else Schnorr.sign sk digest
      in
      { Parverify.j_pk = pk; j_digest = digest; j_signature = signature })

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let tx_s n wall = if wall > 0.0 then float_of_int n /. wall else 0.0

(* --- pipeline: 3 lifecycle checks per signature, inline vs staged ----- *)

let pipeline_rows () =
  let jobs = make_jobs (make_keys "pipe-inline") in
  let inline, wall_inline =
    time (fun () ->
        List.init lifecycle_checks (fun _ -> List.map Parverify.run_job jobs)
        |> List.hd)
  in
  (* The staged run gets its own untabled key values (tables are per-value,
     so the inline baseline above stays unaccelerated). *)
  let staged_keys = make_keys "pipe-inline" in
  let staged_jobs =
    List.map2
      (fun j i ->
        { j with Parverify.j_pk = snd staged_keys.(i mod n_keys) })
      jobs
      (List.init n_jobs Fun.id)
  in
  let st = Vstage.create ~domains () in
  (* Replica keys are registered at startup; chatty client keys earn their
     tables after a few uses. Register here like the replica does. *)
  Array.iter (fun (_, pk) -> ignore (Vstage.register st pk)) staged_keys;
  let staged, wall_staged =
    time (fun () ->
        (* delivery: batched submit/flush, one flush per 16-message batch *)
        let out = ref [] in
        List.iteri
          (fun i j ->
            Vstage.submit st ~cls:"bench" ~principal:Profile.Client_key
              j.Parverify.j_pk j.Parverify.j_digest
              ~signature:j.Parverify.j_signature (fun ok -> out := ok :: !out);
            if i mod 16 = 15 then Vstage.flush st)
          staged_jobs;
        Vstage.flush st;
        (* audit bulk re-check + observer revalidation: cache hits *)
        for _ = 2 to lifecycle_checks do
          List.iter
            (fun j ->
              ignore
                (Vstage.verify_now st ~cls:"bench" ~principal:Profile.Client_key
                   j.Parverify.j_pk j.Parverify.j_digest
                   ~signature:j.Parverify.j_signature))
            staged_jobs
        done;
        List.rev !out)
  in
  if inline <> staged then begin
    prerr_endline "crypto-bench: staged pipeline diverged from inline";
    exit 1
  end;
  let valid = List.length (List.filter Fun.id inline) in
  let checks = n_jobs * lifecycle_checks in
  let speedup = if wall_staged > 0.0 then wall_inline /. wall_staged else 0.0 in
  Printf.printf
    "crypto-bench pipeline: %d sigs x %d checks (%d valid), %d domains\n"
    n_jobs lifecycle_checks valid domains;
  Printf.printf "  inline  %8.1f checks/s  (%.3f s)\n" (tx_s checks wall_inline)
    wall_inline;
  Printf.printf "  staged  %8.1f checks/s  (%.3f s)\n" (tx_s checks wall_staged)
    wall_staged;
  Printf.printf "  batched vs inline speedup: %.2fx\n%!" speedup;
  let bench = "crypto" in
  let series =
    Printf.sprintf "pipeline jobs=%d checks=%d keys=%d" n_jobs lifecycle_checks
      n_keys
  in
  let exact metric v =
    Report.row ~bench ~series ~metric ~gate:Report.Exact (float_of_int v)
  in
  let info metric v = Report.row ~bench ~series ~metric ~gate:Report.Info v in
  [
    exact "jobs" n_jobs;
    exact "valid" valid;
    exact "domains" domains;
    exact "cache_hits" (Vstage.cache_hits st);
    exact "cache_misses" (Vstage.cache_misses st);
    info "inline_checks_s" (tx_s checks wall_inline);
    info "staged_checks_s" (tx_s checks wall_staged);
    info "speedup_batched_vs_inline" speedup;
  ]

(* --- components: one-shot job mix through each acceleration alone ----- *)

let component_rows () =
  let jobs = make_jobs (make_keys "bench") in
  (* Spawning worker domains is one-time process cost, not per-batch cost;
     warm the pool so the pooled figure measures steady state. *)
  ignore (Parverify.verify_batch_results ~domains jobs);
  let inline, wall_inline = time (fun () -> List.map Parverify.run_job jobs) in
  let pooled, wall_pooled =
    time (fun () -> Parverify.verify_batch_results ~domains jobs)
  in
  if inline <> pooled then begin
    prerr_endline "crypto-bench: pooled verification diverged from inline";
    exit 1
  end;
  let (), wall_precompute =
    time (fun () ->
        List.iter
          (fun j ->
            if not (Schnorr.has_table j.Parverify.j_pk) then
              Schnorr.precompute j.Parverify.j_pk)
          jobs)
  in
  let tabled, wall_tabled = time (fun () -> List.map Parverify.run_job jobs) in
  if inline <> tabled then begin
    prerr_endline "crypto-bench: tabled verification diverged from inline";
    exit 1
  end;
  (* Warm a result cache with one pass, then measure the hit path. *)
  let st = Vstage.create ~domains:0 () in
  let verify_all () =
    List.map
      (fun j ->
        Vstage.verify_now st ~cls:"bench" ~principal:Profile.Client_key
          j.Parverify.j_pk j.Parverify.j_digest
          ~signature:j.Parverify.j_signature)
      jobs
  in
  ignore (verify_all ());
  let cached, wall_cached = time verify_all in
  if inline <> cached then begin
    prerr_endline "crypto-bench: cached verification diverged from inline";
    exit 1
  end;
  Printf.printf "crypto-bench components: %d one-shot jobs\n" n_jobs;
  let line label wall =
    Printf.printf "  %-22s %10.1f verifies/s  (%.3f s)\n" label
      (tx_s n_jobs wall) wall
  in
  line "inline" wall_inline;
  line (Printf.sprintf "pooled (%d domains)" domains) wall_pooled;
  line "tabled (fixed-base)" wall_tabled;
  line "cached (LRU hits)" wall_cached;
  Printf.printf "  precompute of %d keys    %.3f s\n%!" n_keys wall_precompute;
  let bench = "crypto" in
  let series = Printf.sprintf "components jobs=%d keys=%d" n_jobs n_keys in
  let info metric v = Report.row ~bench ~series ~metric ~gate:Report.Info v in
  [
    info "inline_verifies_s" (tx_s n_jobs wall_inline);
    info "pooled_verifies_s" (tx_s n_jobs wall_pooled);
    info "tabled_verifies_s" (tx_s n_jobs wall_tabled);
    info "cached_verifies_s" (tx_s n_jobs wall_cached);
    info "precompute_wall_s" wall_precompute;
  ]

let () =
  let rows = pipeline_rows () @ component_rows () in
  Report.write_rows ~file:"BENCH_crypto.json" ~bench:"crypto" rows
