test/test_sim.ml: Alcotest Buffer Iaccf_sim Iaccf_util Latency List Network Printf Sched
