(** Chaos scenario DSL.

    A scenario composes scripted fault actions on the simulator's virtual
    clock over a paced client workload, and declares what the
    accountability machinery must conclude afterwards ({!expect}):

    - [Tolerated] — the faults stay below the threshold the protocol
      masks: every request completes, the receipts are linearizable, and a
      full audit of an exported ledger package is clean.
    - [Blamed] — the faults are scripted misbehaviour by a known culprit
      set: the audit must produce an enforcer-verified uPoM blaming at
      least [f+1] replicas, all of them culprits (zero false blame).

    Three harnesses build scenarios: {!live} scripts faults against a real
    cluster, {!forged} lets a colluding quorum fabricate ledgers offline
    with the replicas' own keys (generalizing {!Iaccf_core.Forge}), and
    {!custom} drives multiple cluster lifetimes (crash/recovery). *)

module Genesis = Iaccf_types.Genesis
module Ledger = Iaccf_ledger.Ledger
module Checkpoint = Iaccf_kv.Checkpoint
open Iaccf_core

type suite = Core | Byzantine | Recovery

val suite_name : suite -> string
val suite_of_name : string -> suite option

type expect =
  | Tolerated
  | Blamed of { culprits : int list }

type ctx = { cx_cluster : Cluster.t; cx_seed : int; cx_scratch : string }
(** What a fault action sees when it fires. *)

type step = { st_at_ms : float; st_label : string; st_act : ctx -> unit }

(** The run's evidence, handed to the oracle. *)
type outcome = {
  oc_genesis : Genesis.t;
  oc_params : Replica.params;
  oc_receipts : Receipt.t list;  (** receipts the clients assembled *)
  oc_gov_receipts : Receipt.t list;
  oc_ledger : Ledger.t;  (** the responder's ledger *)
  oc_checkpoint : Checkpoint.t option;
  oc_responder : int;
  oc_submitted : int;
  oc_completed : int;
  oc_lincheck_closed : bool;
      (** receipts are closed over the state they touch, so the
          linearizability check applies *)
  oc_obs : Iaccf_obs.Obs.t;  (** the run's metrics registry *)
}

type t = {
  sc_name : string;
  sc_suite : suite;
  sc_expect : expect;
  sc_run : seed:int -> scratch:string -> outcome;
}

(** {1 Fault actions} *)

val at : float -> string -> (ctx -> unit) -> step
(** [at ms label act] fires [act] at virtual time [ms]. *)

val crash_replica : int -> ctx -> unit
val restart_replica : int -> ctx -> unit
val partition : int list -> int list -> ctx -> unit
val partition_oneway : int list -> int list -> ctx -> unit
val heal_pair : int -> int -> ctx -> unit
val heal : ctx -> unit
val set_loss : float -> ctx -> unit

val byzantine : int -> Byz.behaviour -> ctx -> unit
(** Wrap a replica's outbound messages with a scripted behaviour. *)

val honest : int -> ctx -> unit
(** Remove a replica's Byzantine wrapper. *)

val suspect_primary : int -> ctx -> unit
(** Make a replica suspect the primary now. *)

val crash_all_storage : ctx -> unit

(** {1 Harnesses} *)

val live :
  name:string ->
  suite:suite ->
  ?n:int ->
  ?requests:int ->
  ?proc:string ->
  ?timeout_ms:float ->
  ?expect:expect ->
  ?params:Replica.params ->
  step list ->
  t

type forgery = {
  fg_receipts : Receipt.t list;
  fg_gov_receipts : Receipt.t list;
  fg_ledger : Ledger.t;
}

type collusion = {
  co_genesis : Genesis.t;
  co_app : App.t;
  co_seed : int;
  co_forge : unit -> Forge.t;  (** a fresh forge over the culprits' keys *)
  co_request : ?client_seqno:int -> string -> string -> Iaccf_types.Request.t;
}

val forged : name:string -> culprits:int list -> ?n:int -> (collusion -> forgery) -> t
(** A Byzantine-suite scenario in which the [culprits] (at least a quorum,
    including replica 0) fabricate the evidence offline. *)

val custom :
  name:string ->
  suite:suite ->
  ?expect:expect ->
  (seed:int -> scratch:string -> outcome) ->
  t

(** {1 Shared helpers} *)

val workload :
  ?pace_ms:float ->
  ?proc:string ->
  ?args:(int -> string) ->
  timeout_ms:float ->
  Cluster.t ->
  Client.t ->
  int ->
  Receipt.t list * int
(** Submit a paced workload and wait for completion (or timeout); returns
    the receipts in submission order and the completion count. *)

val pick_responder : Cluster.t -> Replica.t
(** The active replica with the longest ledger. *)

val faulty_f : Genesis.t -> int
(** [f] for the genesis configuration's size. *)
