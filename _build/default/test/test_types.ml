(* Protocol type tests: configurations, genesis, requests, messages, and
   their canonical codecs (round-trips and signing-payload stability). *)

open Iaccf_types
module Schnorr = Iaccf_crypto.Schnorr
module D = Iaccf_crypto.Digest32
module Bitmap = Iaccf_util.Bitmap
module Codec = Iaccf_util.Codec

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- fixtures --- *)

let member_keys = List.init 4 (fun i -> Schnorr.keypair_of_seed (Printf.sprintf "m%d" i))
let replica_keys = List.init 6 (fun i -> Schnorr.keypair_of_seed (Printf.sprintf "r%d" i))

let make_config ?(ids = [ 0; 1; 2; 3 ]) ?(config_no = 0) () =
  let members =
    List.mapi
      (fun i (_, pk) -> { Config.member_name = Printf.sprintf "m%d" i; member_pk = pk })
      member_keys
  in
  let cfg_no_endorse =
    {
      Config.config_no;
      members;
      replicas =
        List.mapi
          (fun i id ->
            ignore i;
            {
              Config.replica_id = id;
              operator = Printf.sprintf "m%d" (id mod 4);
              replica_pk = snd (List.nth replica_keys id);
              endorsement = "";
            })
          ids;
      vote_threshold = 3;
    }
  in
  let replicas =
    List.map
      (fun (r : Config.replica_info) ->
        let msk, _ = List.nth member_keys (r.Config.replica_id mod 4) in
        let payload =
          Config.endorsement_payload cfg_no_endorse ~replica_id:r.Config.replica_id
            ~pk:r.Config.replica_pk
        in
        { r with Config.endorsement = Schnorr.sign msk (D.to_raw payload) })
      cfg_no_endorse.Config.replicas
  in
  { cfg_no_endorse with Config.replicas }

(* --- Config --- *)

let test_config_fault_thresholds () =
  let f n = Config.f (make_config ~ids:(List.init n Fun.id) ()) in
  check Alcotest.int "N=4" 1 (f 4);
  check Alcotest.int "N=5" 1 (f 5);
  check Alcotest.int "N=6" 1 (f 6);
  check Alcotest.int "quorum N=4" 3 (Config.quorum (make_config ()));
  let c5 = make_config ~ids:[ 0; 1; 2; 3; 4 ] () in
  check Alcotest.int "quorum N=5" 4 (Config.quorum c5)

let test_config_primary_rotation () =
  (* Non-dense ids: the primary is the (view mod N)-th id in sorted order. *)
  let c = make_config ~ids:[ 0; 2; 5 ] () in
  check Alcotest.int "view 0" 0 (Config.primary_of_view c 0);
  check Alcotest.int "view 1" 2 (Config.primary_of_view c 1);
  check Alcotest.int "view 2" 5 (Config.primary_of_view c 2);
  check Alcotest.int "view 3 wraps" 0 (Config.primary_of_view c 3)

let test_config_validate () =
  let ok = make_config () in
  check Alcotest.bool "valid" true (Result.is_ok (Config.validate ok));
  let dup = { ok with Config.replicas = ok.Config.replicas @ ok.Config.replicas } in
  check Alcotest.bool "duplicate ids rejected" true (Result.is_error (Config.validate dup));
  let bad_threshold = { ok with Config.vote_threshold = 99 } in
  check Alcotest.bool "threshold range" true (Result.is_error (Config.validate bad_threshold));
  let bad_endorsement =
    {
      ok with
      Config.replicas =
        List.map
          (fun (r : Config.replica_info) -> { r with Config.endorsement = String.make 64 'x' })
          ok.Config.replicas;
    }
  in
  check Alcotest.bool "bad endorsement rejected" true
    (Result.is_error (Config.validate bad_endorsement))

let test_config_roundtrip () =
  let c = make_config ~ids:[ 0; 1; 2; 3; 4; 5 ] ~config_no:7 () in
  let c' = Config.deserialize (Config.serialize c) in
  check Alcotest.bool "equal" true (Config.equal c c');
  check Alcotest.int "config_no" 7 c'.Config.config_no;
  check Alcotest.int "n" 6 (Config.n_replicas c')

let test_config_lookups () =
  let c = make_config () in
  check Alcotest.(option string) "operator" (Some "m2") (Config.operator_of_replica c 2);
  check Alcotest.bool "missing replica" true (Config.replica c 9 = None);
  check Alcotest.bool "member pk known" true
    (Config.is_member_pk c (snd (List.hd member_keys)));
  check Alcotest.bool "random pk unknown" false
    (Config.is_member_pk c (snd (Schnorr.keypair_of_seed "stranger")))

(* --- Genesis --- *)

let test_genesis_hash_stability () =
  let g = Genesis.make (make_config ()) in
  let g' = Genesis.deserialize (Genesis.serialize g) in
  check Alcotest.string "hash stable" (D.to_hex (Genesis.hash g)) (D.to_hex (Genesis.hash g'));
  let g2 = Genesis.make ~label:"other-service" (make_config ()) in
  check Alcotest.bool "label changes service name" false
    (D.equal (Genesis.hash g) (Genesis.hash g2))

let test_genesis_requires_config_zero () =
  Alcotest.check_raises "config_no must be 0"
    (Invalid_argument "Genesis.make: initial configuration must have number 0")
    (fun () -> ignore (Genesis.make (make_config ~config_no:3 ())))

(* --- Request --- *)

let service = D.of_string "svc"

let make_request ?(min_index = 0) ?(client_seqno = 0) () =
  let sk, pk = Schnorr.keypair_of_seed "client" in
  Request.make ~sk ~client_pk:pk ~service ~min_index ~client_seqno ~proc:"p"
    ~args:"a" ()

let test_request_verify () =
  let r = make_request () in
  check Alcotest.bool "verifies" true (Request.verify r ~service);
  check Alcotest.bool "wrong service" false
    (Request.verify r ~service:(D.of_string "other"));
  let tampered = { r with Request.args = "b" } in
  check Alcotest.bool "tampered args" false (Request.verify tampered ~service)

let test_request_roundtrip () =
  let r = make_request ~min_index:42 ~client_seqno:7 () in
  let r' = Request.deserialize (Request.serialize r) in
  check Alcotest.bool "hash stable" true (D.equal (Request.hash r) (Request.hash r'));
  check Alcotest.int "min_index" 42 r'.Request.min_index;
  check Alcotest.bool "still verifies" true (Request.verify r' ~service)

let test_request_hash_distinct () =
  let a = make_request ~client_seqno:0 () in
  let b = make_request ~client_seqno:1 () in
  check Alcotest.bool "distinct seqno, distinct hash" false
    (D.equal (Request.hash a) (Request.hash b))

(* --- Batch --- *)

let arb_kind =
  let open QCheck in
  let gen =
    Gen.oneof
      [
        Gen.return Batch.Regular;
        Gen.map2
          (fun s d -> Batch.Checkpoint { cp_seqno = s; cp_digest = D.of_string (string_of_int d) })
          Gen.small_nat Gen.small_nat;
        Gen.map2
          (fun p d ->
            Batch.End_of_config { phase = p + 1; committed_root = D.of_string (string_of_int d) })
          Gen.small_nat Gen.small_nat;
        Gen.map (fun p -> Batch.Start_of_config { phase = p + 1 }) Gen.small_nat;
      ]
  in
  make ~print:(fun k -> Format.asprintf "%a" Batch.pp_kind k) gen

let prop_kind_roundtrip =
  QCheck.Test.make ~name:"batch kind codec roundtrip" ~count:200 arb_kind (fun k ->
      let enc = Codec.encode (fun w -> Batch.encode_kind w k) in
      Batch.kind_equal k (Codec.decode enc Batch.decode_kind))

let test_tx_entry_roundtrip () =
  let tx =
    {
      Batch.request = make_request ();
      index = 12;
      result = { Batch.output = "out"; write_set_hash = D.of_string "ws" };
    }
  in
  let enc = Batch.serialize_tx_entry tx in
  let tx' = Codec.decode enc Batch.decode_tx_entry in
  check Alcotest.string "identical bytes" enc (Batch.serialize_tx_entry tx');
  check Alcotest.bool "same leaf" true (D.equal (Batch.tx_leaf tx) (Batch.tx_leaf tx'))

let test_g_root_order_sensitive () =
  let tx i =
    {
      Batch.request = make_request ~client_seqno:i ();
      index = i;
      result = { Batch.output = ""; write_set_hash = D.of_string "w" };
    }
  in
  let a = Batch.g_root [ tx 1; tx 2 ] and b = Batch.g_root [ tx 2; tx 1 ] in
  check Alcotest.bool "order matters" false (D.equal a b);
  check Alcotest.bool "empty batch has empty-tree root" true
    (D.equal (Batch.g_root []) Iaccf_merkle.Tree.empty_root)

(* --- Messages --- *)

let sample_pp ?(view = 0) ?(seqno = 1) () =
  let sk, _ = Schnorr.keypair_of_seed "r0" in
  let payload =
    Message.pre_prepare_payload ~view ~seqno ~m_root:(D.of_string "m")
      ~g_root:(D.of_string "g") ~nonce_com:(D.of_string "n") ~ev_bitmap:Bitmap.empty
      ~gov_index:0 ~cp_digest:(D.of_string "c") ~kind:Batch.Regular ~primary:0
  in
  {
    Message.view;
    seqno;
    m_root = D.of_string "m";
    g_root = D.of_string "g";
    nonce_com = D.of_string "n";
    ev_bitmap = Bitmap.empty;
    gov_index = 0;
    cp_digest = D.of_string "c";
    kind = Batch.Regular;
    primary = 0;
    signature = Schnorr.sign sk (D.to_raw payload);
  }

let test_pre_prepare_verify () =
  let c = make_config () in
  let pp = sample_pp () in
  check Alcotest.bool "verifies" true (Message.verify_pre_prepare c pp);
  (* view 1's primary is replica 1, so replica 0's signature must fail. *)
  check Alcotest.bool "wrong view primary" false
    (Message.verify_pre_prepare c { pp with Message.view = 1 });
  check Alcotest.bool "tampered root" false
    (Message.verify_pre_prepare c { pp with Message.g_root = D.of_string "x" })

let test_pre_prepare_roundtrip () =
  let pp = sample_pp () in
  let enc = Message.serialize_pre_prepare pp in
  let pp' = Codec.decode enc Message.decode_pre_prepare in
  check Alcotest.bool "equal" true (Message.pre_prepare_equal pp pp');
  check Alcotest.bool "same hash" true
    (D.equal (Message.pp_hash pp) (Message.pp_hash pp'))

let test_prepare_verify_and_roundtrip () =
  let c = make_config () in
  let sk, _ = Schnorr.keypair_of_seed "r2" in
  let pp = sample_pp () in
  let payload =
    Message.prepare_payload ~view:0 ~seqno:1 ~replica:2 ~nonce_com:(D.of_string "nc")
      ~pp_hash:(Message.pp_hash pp)
  in
  let p =
    {
      Message.p_view = 0;
      p_seqno = 1;
      p_replica = 2;
      p_nonce_com = D.of_string "nc";
      p_pp_hash = Message.pp_hash pp;
      p_signature = Schnorr.sign sk (D.to_raw payload);
    }
  in
  check Alcotest.bool "verifies" true (Message.verify_prepare c p);
  check Alcotest.bool "replica id is bound" false
    (Message.verify_prepare c { p with Message.p_replica = 1 });
  let enc = Codec.encode (fun w -> Message.encode_prepare w p) in
  let p' = Codec.decode enc Message.decode_prepare in
  check Alcotest.bool "roundtrip verifies" true (Message.verify_prepare c p')

let test_view_change_roundtrip () =
  let sk, _ = Schnorr.keypair_of_seed "r1" in
  let pps = [ sample_pp ~seqno:5 (); sample_pp ~seqno:6 () ] in
  let payload = Message.view_change_payload ~view:1 ~replica:1 ~last_prepared:pps in
  let vc =
    {
      Message.vc_view = 1;
      vc_replica = 1;
      vc_last_prepared = pps;
      vc_signature = Schnorr.sign sk (D.to_raw payload);
    }
  in
  let c = make_config () in
  check Alcotest.bool "verifies" true (Message.verify_view_change c vc);
  let enc = Codec.encode (fun w -> Message.encode_view_change w vc) in
  let vc' = Codec.decode enc Message.decode_view_change in
  check Alcotest.bool "roundtrip verifies" true (Message.verify_view_change c vc');
  check Alcotest.int "pps preserved" 2 (List.length vc'.Message.vc_last_prepared)

let test_new_view_roundtrip () =
  let sk, _ = Schnorr.keypair_of_seed "r1" in
  let payload =
    Message.new_view_payload ~view:1 ~m_root:(D.of_string "m")
      ~vc_bitmap:(Bitmap.of_list [ 0; 1; 2 ]) ~vc_hash:(D.of_string "h") ~primary:1
  in
  let nv =
    {
      Message.nv_view = 1;
      nv_m_root = D.of_string "m";
      nv_vc_bitmap = Bitmap.of_list [ 0; 1; 2 ];
      nv_vc_hash = D.of_string "h";
      nv_primary = 1;
      nv_signature = Schnorr.sign sk (D.to_raw payload);
    }
  in
  let c = make_config () in
  check Alcotest.bool "verifies" true (Message.verify_new_view c nv);
  let enc = Codec.encode (fun w -> Message.encode_new_view w nv) in
  check Alcotest.bool "roundtrip verifies" true
    (Message.verify_new_view c (Codec.decode enc Message.decode_new_view))

let () =
  Alcotest.run "iaccf_types"
    [
      ( "config",
        [
          Alcotest.test_case "fault thresholds" `Quick test_config_fault_thresholds;
          Alcotest.test_case "primary rotation" `Quick test_config_primary_rotation;
          Alcotest.test_case "validate" `Quick test_config_validate;
          Alcotest.test_case "roundtrip" `Quick test_config_roundtrip;
          Alcotest.test_case "lookups" `Quick test_config_lookups;
        ] );
      ( "genesis",
        [
          Alcotest.test_case "hash stability" `Quick test_genesis_hash_stability;
          Alcotest.test_case "config zero" `Quick test_genesis_requires_config_zero;
        ] );
      ( "request",
        [
          Alcotest.test_case "verify" `Quick test_request_verify;
          Alcotest.test_case "roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "hash distinct" `Quick test_request_hash_distinct;
        ] );
      ( "batch",
        [
          qtest prop_kind_roundtrip;
          Alcotest.test_case "tx entry roundtrip" `Quick test_tx_entry_roundtrip;
          Alcotest.test_case "g_root order" `Quick test_g_root_order_sensitive;
        ] );
      ( "messages",
        [
          Alcotest.test_case "pre-prepare verify" `Quick test_pre_prepare_verify;
          Alcotest.test_case "pre-prepare roundtrip" `Quick test_pre_prepare_roundtrip;
          Alcotest.test_case "prepare" `Quick test_prepare_verify_and_roundtrip;
          Alcotest.test_case "view-change" `Quick test_view_change_roundtrip;
          Alcotest.test_case "new-view" `Quick test_new_view_roundtrip;
        ] );
    ]
