open Iaccf_crypto
module Hex = Iaccf_util.Hex

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest
let hex_digest s = Hex.encode (Sha256.digest s)

(* --- SHA-256 against FIPS 180-4 / NIST vectors --- *)

let test_sha256_vectors () =
  check Alcotest.string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex_digest "");
  check Alcotest.string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex_digest "abc");
  check Alcotest.string "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex_digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check Alcotest.string "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (hex_digest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_million_a () =
  check Alcotest.string "1M a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex_digest (String.make 1_000_000 'a'))

let test_sha256_block_boundaries () =
  (* 55/56/63/64/65 bytes exercise every padding branch. *)
  let expected =
    [
      (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
      (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
      (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34");
      (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
      (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0");
    ]
  in
  List.iter
    (fun (n, hexpect) ->
      check Alcotest.string (string_of_int n) hexpect (hex_digest (String.make n 'a')))
    expected

let test_sha256_incremental () =
  let whole = Sha256.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  Sha256.feed ctx "the quick brown ";
  Sha256.feed ctx "";
  Sha256.feed ctx "fox jumps over the lazy dog";
  check Alcotest.string "incremental = one-shot" (Hex.encode whole)
    (Hex.encode (Sha256.finalize ctx))

let prop_sha256_incremental_split =
  QCheck.Test.make ~name:"incremental feeding matches one-shot" ~count:100
    QCheck.(pair string small_nat)
    (fun (s, k) ->
      let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub s 0 k);
      Sha256.feed ctx (String.sub s k (String.length s - k));
      Sha256.finalize ctx = Sha256.digest s)

(* --- HMAC-SHA256 against RFC 4231 vectors --- *)

let test_hmac_rfc4231 () =
  let mac_hex ~key msg = Hex.encode (Hmac.mac ~key msg) in
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (mac_hex ~key:(String.make 20 '\x0b') "Hi There");
  check Alcotest.string "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (mac_hex ~key:"Jefe" "what do ya want for nothing?");
  check Alcotest.string "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (mac_hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  (* case 6: key longer than a block *)
  check Alcotest.string "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (mac_hex
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "payload" in
  let m = Hmac.mac ~key msg in
  check Alcotest.bool "accepts" true (Hmac.verify ~key msg ~mac:m);
  check Alcotest.bool "rejects tamper" false (Hmac.verify ~key "payload!" ~mac:m);
  check Alcotest.bool "rejects short" false (Hmac.verify ~key msg ~mac:"short")

(* --- Bignum --- *)

let bn = Bignum.of_int
let bn_testable = Alcotest.testable Bignum.pp Bignum.equal

let test_bignum_basics () =
  check bn_testable "add" (bn 579) (Bignum.add (bn 123) (bn 456));
  check bn_testable "sub" (bn 111) (Bignum.sub (bn 234) (bn 123));
  check bn_testable "mul" (bn 56088) (Bignum.mul (bn 123) (bn 456));
  check Alcotest.bool "zero" true (Bignum.is_zero (Bignum.sub (bn 5) (bn 5)));
  check Alcotest.(option int) "to_int" (Some 123456789)
    (Bignum.to_int_opt (bn 123456789))

let test_bignum_sub_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.sub: negative result")
    (fun () -> ignore (Bignum.sub (bn 1) (bn 2)))

let test_bignum_hex () =
  let v = Bignum.of_hex "ffffffffffffffffffffffffffffffff" in
  check Alcotest.string "hex roundtrip" "ffffffffffffffffffffffffffffffff"
    (Bignum.to_hex v);
  check bn_testable "of_hex small" (bn 255) (Bignum.of_hex "ff");
  (* 2^128 - 1 + 1 = 2^128 *)
  check Alcotest.string "carry across limbs" "0100000000000000000000000000000000"
    (Bignum.to_hex (Bignum.add v Bignum.one))

let test_bignum_divmod_known () =
  let a = Bignum.of_hex "deadbeefdeadbeefdeadbeefdeadbeef" in
  let b = Bignum.of_hex "1234567890abcdef" in
  let q, r = Bignum.divmod a b in
  check bn_testable "a = q*b + r" a (Bignum.add (Bignum.mul q b) r);
  check Alcotest.bool "r < b" true (Bignum.compare r b < 0)

let test_bignum_shift () =
  let v = bn 1 in
  check bn_testable "1 << 100 >> 100" v
    (Bignum.shift_right (Bignum.shift_left v 100) 100);
  check Alcotest.int "bit_length 2^100" 101 (Bignum.bit_length (Bignum.shift_left v 100));
  check Alcotest.bool "test_bit" true (Bignum.test_bit (Bignum.shift_left v 100) 100)

let test_bignum_mask () =
  let v = Bignum.of_hex "ffff" in
  check bn_testable "mask 8" (bn 0xff) (Bignum.mask_bits v 8);
  check bn_testable "mask 20" v (Bignum.mask_bits v 20)

let test_bignum_bytes () =
  let s = "\x01\x02\x03\x04" in
  check Alcotest.string "roundtrip" s (Bignum.to_bytes_be (Bignum.of_bytes_be s));
  check Alcotest.string "fixed pad" "\x00\x00\x01\x00"
    (Bignum.to_bytes_be_fixed 4 (bn 256));
  Alcotest.check_raises "too large"
    (Invalid_argument "Bignum.to_bytes_be_fixed: value too large") (fun () ->
      ignore (Bignum.to_bytes_be_fixed 1 (bn 256)))

let test_bignum_mod_pow () =
  (* 3^20 mod 1000 = 3486784401 mod 1000 = 401 *)
  check bn_testable "3^20 mod 1000" (bn 401)
    (Bignum.mod_pow (bn 3) (bn 20) (bn 1000));
  (* Fermat: 2^(p-1) = 1 mod p for prime p = 1000003 *)
  check bn_testable "fermat" Bignum.one
    (Bignum.mod_pow (bn 2) (bn 1000002) (bn 1000003))

let arb_small_pair = QCheck.(pair (map abs int) (map abs int))

let prop_bignum_add_commutes =
  QCheck.Test.make ~name:"add commutes/matches int" ~count:300 arb_small_pair
    (fun (a, b) ->
      let s = Bignum.add (bn a) (bn b) in
      Bignum.equal s (Bignum.add (bn b) (bn a))
      && Bignum.to_int_opt s = Some (a + b))

let prop_bignum_mul_matches_int =
  QCheck.Test.make ~name:"mul matches int" ~count:300
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, b) -> Bignum.to_int_opt (Bignum.mul (bn a) (bn b)) = Some (a * b))

let prop_bignum_divmod =
  QCheck.Test.make ~name:"divmod invariant" ~count:300
    QCheck.(pair (map abs int) (map (fun x -> (abs x mod 1000000) + 1) int))
    (fun (a, b) ->
      let q, r = Bignum.divmod (bn a) (bn b) in
      Bignum.to_int_opt q = Some (a / b) && Bignum.to_int_opt r = Some (a mod b))

let arb_big =
  QCheck.make
    ~print:(fun v -> Bignum.to_hex v)
    (QCheck.Gen.map
       (fun s -> Bignum.of_bytes_be (String.concat "" s))
       QCheck.Gen.(list_size (int_range 0 40) (map (String.make 1) char)))

let prop_bignum_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip big" ~count:200 arb_big (fun v ->
      Bignum.equal v (Bignum.of_bytes_be (Bignum.to_bytes_be v)))

let prop_bignum_divmod_big =
  QCheck.Test.make ~name:"divmod invariant big" ~count:100
    (QCheck.pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0)

let prop_bignum_shift_mul =
  QCheck.Test.make ~name:"shift_left n = mul 2^n" ~count:100
    (QCheck.pair arb_big (QCheck.int_bound 100))
    (fun (a, n) ->
      Bignum.equal (Bignum.shift_left a n)
        (Bignum.mul a (Bignum.mod_pow (bn 2) (bn n) (Bignum.shift_left Bignum.one 200))))

(* --- Group --- *)

let test_group_reduce_matches_rem () =
  let x = Bignum.of_hex (String.concat "" (List.init 16 (fun _ -> "deadbeef"))) in
  check bn_testable "reduce = rem" (Bignum.rem x Group.p) (Group.reduce x)

let test_group_pow_matches_mod_pow () =
  let b = bn 12345 and e = bn 6789 in
  check bn_testable "pow = mod_pow" (Bignum.mod_pow b e Group.p) (Group.pow b e)

let test_group_fermat () =
  (* g^n = 1 (mod p) since n = p - 1 and p is prime. *)
  check bn_testable "g^(p-1) = 1" Bignum.one (Group.pow Group.g Group.n)

let test_group_element_bytes () =
  check Alcotest.(option string) "roundtrip" (Some (Group.element_to_bytes (bn 42)))
    (Option.map Group.element_to_bytes (Group.element_of_bytes (Group.element_to_bytes (bn 42))));
  check Alcotest.bool "rejects zero" true
    (Group.element_of_bytes (String.make 32 '\x00') = None);
  check Alcotest.bool "rejects >= p" true
    (Group.element_of_bytes (String.make 32 '\xff') = None)

let prop_group_pow_homomorphism =
  QCheck.Test.make ~name:"g^a * g^b = g^(a+b)" ~count:20
    QCheck.(pair (int_bound 100000) (int_bound 100000))
    (fun (a, b) ->
      let lhs = Group.mul (Group.pow Group.g (bn a)) (Group.pow Group.g (bn b)) in
      let rhs = Group.pow Group.g (bn (a + b)) in
      Bignum.equal lhs rhs)

let test_group_table_pow () =
  let base = bn 987654321 in
  let table = Group.make_table base in
  List.iter
    (fun e ->
      check bn_testable (Printf.sprintf "base^%d" e) (Group.pow base (bn e))
        (Group.pow_table table (bn e)))
    [ 0; 1; 2; 255; 1 lsl 30 ];
  (* A full-width exponent exercises every table entry the value touches. *)
  let e = Bignum.sub Group.n Bignum.one in
  check bn_testable "base^(n-1)" (Group.pow base e) (Group.pow_table table e);
  check bn_testable "g_table consistent" (Group.pow Group.g e) (Group.pow_g e)

let prop_group_multi_pow =
  QCheck.Test.make ~name:"multi_pow = product of pows" ~count:15
    QCheck.(triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 100000))
    (fun (a, b, c) ->
      let y = Group.pow_g (bn c) in
      let expect = Group.mul (Group.pow Group.g (bn a)) (Group.pow y (bn b)) in
      Bignum.equal expect (Group.multi_pow [ (Group.g, bn a); (y, bn b) ]))

(* --- Schnorr --- *)

let test_schnorr_sign_verify () =
  let sk, pk = Schnorr.keypair_of_seed "replica-0" in
  let digest = Sha256.digest "message" in
  let signature = Schnorr.sign sk digest in
  check Alcotest.int "signature size" 64 (String.length signature);
  check Alcotest.bool "verifies" true (Schnorr.verify pk digest ~signature)

let test_schnorr_rejects_wrong_digest () =
  let sk, pk = Schnorr.keypair_of_seed "replica-0" in
  let signature = Schnorr.sign sk (Sha256.digest "message") in
  check Alcotest.bool "wrong digest" false
    (Schnorr.verify pk (Sha256.digest "other") ~signature)

let test_schnorr_rejects_wrong_key () =
  let sk, _ = Schnorr.keypair_of_seed "replica-0" in
  let _, pk1 = Schnorr.keypair_of_seed "replica-1" in
  let digest = Sha256.digest "message" in
  let signature = Schnorr.sign sk digest in
  check Alcotest.bool "wrong key" false (Schnorr.verify pk1 digest ~signature)

let test_schnorr_rejects_tampered_sig () =
  let sk, pk = Schnorr.keypair_of_seed "replica-0" in
  let digest = Sha256.digest "message" in
  let signature = Schnorr.sign sk digest in
  let tampered =
    String.mapi (fun i c -> if i = 10 then Char.chr (Char.code c lxor 1) else c) signature
  in
  check Alcotest.bool "tampered" false (Schnorr.verify pk digest ~signature:tampered);
  check Alcotest.bool "truncated" false
    (Schnorr.verify pk digest ~signature:(String.sub signature 0 63))

let test_schnorr_deterministic () =
  let sk, _ = Schnorr.keypair_of_seed "replica-0" in
  let digest = Sha256.digest "message" in
  check Alcotest.string "deterministic" (Schnorr.sign sk digest) (Schnorr.sign sk digest)

let test_schnorr_pk_bytes_roundtrip () =
  let _, pk = Schnorr.keypair_of_seed "replica-0" in
  let b = Schnorr.public_key_to_bytes pk in
  check Alcotest.int "32 bytes" 32 (String.length b);
  match Schnorr.public_key_of_bytes b with
  | None -> Alcotest.fail "roundtrip failed"
  | Some pk' -> check Alcotest.bool "equal" true (Schnorr.public_key_equal pk pk')

let prop_schnorr_roundtrip =
  QCheck.Test.make ~name:"sign/verify roundtrip" ~count:20 QCheck.string
    (fun seed ->
      let sk, pk = Schnorr.keypair_of_seed seed in
      let digest = Sha256.digest seed in
      Schnorr.verify pk digest ~signature:(Schnorr.sign sk digest))

let prop_schnorr_cross_rejects =
  QCheck.Test.make ~name:"cross-key rejection" ~count:10
    QCheck.(pair small_string small_string)
    (fun (s1, s2) ->
      QCheck.assume (s1 <> s2);
      let sk, _ = Schnorr.keypair_of_seed s1 in
      let _, pk2 = Schnorr.keypair_of_seed s2 in
      let digest = Sha256.digest "msg" in
      not (Schnorr.verify pk2 digest ~signature:(Schnorr.sign sk digest)))

let test_schnorr_precompute_matches () =
  let sk, pk = Schnorr.keypair_of_seed "tabled" in
  let digest = Sha256.digest "message" in
  let signature = Schnorr.sign sk digest in
  let tampered =
    String.mapi (fun i c -> if i = 40 then Char.chr (Char.code c lxor 4) else c) signature
  in
  check Alcotest.bool "no table yet" false (Schnorr.has_table pk);
  let untabled_ok = Schnorr.verify pk digest ~signature in
  let untabled_bad = Schnorr.verify pk digest ~signature:tampered in
  Schnorr.precompute pk;
  check Alcotest.bool "table built" true (Schnorr.has_table pk);
  Schnorr.precompute pk (* idempotent *);
  check Alcotest.bool "tabled accepts" untabled_ok (Schnorr.verify pk digest ~signature);
  check Alcotest.bool "tabled rejects" untabled_bad
    (Schnorr.verify pk digest ~signature:tampered);
  check Alcotest.bool "accepts" true untabled_ok;
  check Alcotest.bool "rejects" false untabled_bad

(* --- Digest32 / Nonce --- *)

let test_digest32 () =
  let d = Digest32.of_string "x" in
  check Alcotest.string "raw = sha256" (Sha256.digest "x") (Digest32.to_raw d);
  check Alcotest.bool "hex roundtrip" true
    (Digest32.equal d (Digest32.of_hex (Digest32.to_hex d)));
  Alcotest.check_raises "bad raw" (Invalid_argument "Digest32.of_raw: expected 32 bytes")
    (fun () -> ignore (Digest32.of_raw "short"))

let test_nonce_commitment () =
  let rng = Iaccf_util.Rng.create 5 in
  let nonce = Nonce.generate rng in
  let commitment = Nonce.commit nonce in
  check Alcotest.bool "opens" true (Nonce.check ~commitment nonce);
  let other = Nonce.generate rng in
  check Alcotest.bool "rejects other" false (Nonce.check ~commitment other)

let test_nonce_derive_distinct () =
  let k = "key" in
  let n1 = Nonce.derive ~key:k ~view:0 ~seqno:1 in
  let n2 = Nonce.derive ~key:k ~view:0 ~seqno:2 in
  let n3 = Nonce.derive ~key:k ~view:1 ~seqno:1 in
  check Alcotest.bool "seqno distinct" false (Nonce.reveal n1 = Nonce.reveal n2);
  check Alcotest.bool "view distinct" false (Nonce.reveal n1 = Nonce.reveal n3);
  check Alcotest.string "deterministic" (Nonce.reveal n1)
    (Nonce.reveal (Nonce.derive ~key:k ~view:0 ~seqno:1))


(* --- Parverify --- *)

let par_jobs n =
  List.init n (fun i ->
      let sk, pk = Schnorr.keypair_of_seed (Printf.sprintf "par-%d" i) in
      let digest = Sha256.digest (string_of_int i) in
      { Parverify.j_pk = pk; j_digest = digest; j_signature = Schnorr.sign sk digest })

let test_parverify_accepts () =
  let jobs = par_jobs 12 in
  check Alcotest.bool "sequential" true (Parverify.verify_batch ~domains:1 jobs);
  check Alcotest.bool "parallel" true (Parverify.verify_batch ~domains:3 jobs)

let test_parverify_rejects_bad_job () =
  let jobs = par_jobs 12 in
  let bad =
    List.mapi
      (fun i j ->
        if i = 7 then { j with Parverify.j_signature = String.make 64 'x' } else j)
      jobs
  in
  check Alcotest.bool "batch fails" false (Parverify.verify_batch ~domains:3 bad);
  let results = Parverify.verify_batch_results ~domains:3 bad in
  check Alcotest.int "results in order" 12 (List.length results);
  List.iteri
    (fun i ok -> check Alcotest.bool (Printf.sprintf "job %d" i) (i <> 7) ok)
    results

let test_parverify_matches_sequential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parallel = sequential" ~count:5
       QCheck.(int_range 0 20)
       (fun n ->
         let jobs = par_jobs n in
         Parverify.verify_batch_results ~domains:1 jobs
         = Parverify.verify_batch_results ~domains:4 jobs))

(* Worker domains must survive raising tasks (they are process-global, so
   one dead domain would shrink the pool for the rest of the run), a
   raising task must read as failed verification, and batches after a
   raising batch must still complete — the coordinator cannot hang on a
   [remaining] count a dead path never decremented. *)
let test_pool_survives_raising_tasks () =
  ignore (Parverify.verify_batch ~domains:4 (par_jobs 4));
  let workers_before = Parverify.worker_count () in
  let jobs = par_jobs 6 in
  for round = 0 to 4 do
    let tasks =
      List.mapi
        (fun i j ->
          match (round + i) mod 3 with
          | 0 -> fun () -> Parverify.run_job j (* valid *)
          | 1 ->
              fun () ->
                Parverify.run_job
                  { j with Parverify.j_signature = String.make 64 'x' }
              (* invalid *)
          | _ -> fun () -> failwith "boom" (* raising *))
        jobs
    in
    let results = Parverify.run_tasks ~domains:4 tasks in
    List.iteri
      (fun i ok ->
        check Alcotest.bool
          (Printf.sprintf "round %d task %d" round i)
          ((round + i) mod 3 = 0)
          ok)
      results
  done;
  check Alcotest.int "no worker died" workers_before (Parverify.worker_count ());
  check Alcotest.bool "pool still serves verify batches" true
    (Parverify.verify_batch ~domains:4 (par_jobs 8))

(* --- Vstage: the batched, pool-backed verify stage --- *)

let flip_bit s bit =
  let n = String.length s in
  if n = 0 then s
  else
    let i = bit / 8 mod n and b = bit mod 8 in
    String.mapi
      (fun j c -> if j = i then Char.chr (Char.code c lxor (1 lsl b)) else c)
      s

(* The stage must agree with inline Schnorr.verify in both modes — on
   valid signatures and on inputs with a random bit flipped in the public
   key, the digest, or the signature — with callbacks in submission order. *)
let prop_vstage_matches_inline_under_flips =
  QCheck.Test.make ~name:"pooled/batched = inline under bit flips" ~count:15
    QCheck.(
      list_of_size (Gen.int_range 4 12) (triple (int_bound 5) (int_bound 3) (int_bound 511)))
    (fun cases ->
      let jobs =
        List.map
          (fun (kseed, target, bit) ->
            let sk, pk = Schnorr.keypair_of_seed (Printf.sprintf "flip-%d" kseed) in
            let digest = Sha256.digest (Printf.sprintf "m-%d" kseed) in
            let signature = Schnorr.sign sk digest in
            let pk, digest, signature =
              match target with
              | 0 -> (pk, digest, signature)
              | 1 -> (
                  (* A flipped key encoding may no longer be a group
                     element; fall back to flipping the digest so the case
                     still exercises a corrupted input. *)
                  match
                    Schnorr.public_key_of_bytes
                      (flip_bit (Schnorr.public_key_to_bytes pk) bit)
                  with
                  | Some pk' -> (pk', digest, signature)
                  | None -> (pk, flip_bit digest bit, signature))
              | 2 -> (pk, flip_bit digest bit, signature)
              | _ -> (pk, digest, flip_bit signature bit)
            in
            { Parverify.j_pk = pk; j_digest = digest; j_signature = signature })
          cases
      in
      let inline = List.map Parverify.run_job jobs in
      let batched = Parverify.verify_batch_results ~domains:4 jobs in
      let staged domains =
        let st = Vstage.create ~domains () in
        let out = ref [] in
        List.iter
          (fun j ->
            Vstage.submit st ~cls:"flip" ~principal:Profile.Client_key
              j.Parverify.j_pk j.Parverify.j_digest
              ~signature:j.Parverify.j_signature (fun ok -> out := ok :: !out))
          jobs;
        Vstage.flush st;
        List.rev !out
      in
      inline = batched && inline = staged 0 && inline = staged 4)

let test_vstage_callback_order_and_cache () =
  let sk, pk = Schnorr.keypair_of_seed "vstage" in
  let items =
    List.init 20 (fun i ->
        let digest = Sha256.digest (string_of_int (i mod 6)) in
        let signature =
          if i mod 5 = 0 then String.make 64 '\x01' else Schnorr.sign sk digest
        in
        (digest, signature))
  in
  (* Two waves with a flush between, like the replica's flush-per-message
     cadence: wave 2 repeats wave 1's (pk, digest, signature) keys, so its
     submissions must hit the result cache in both modes. *)
  let run domains =
    let st = Vstage.create ~domains () in
    let out = ref [] in
    List.iteri
      (fun i (digest, signature) ->
        Vstage.submit st ~cls:"test" ~principal:Profile.Client_key pk digest
          ~signature (fun ok -> out := (i, ok) :: !out);
        if i = 9 then Vstage.flush st)
      items;
    Vstage.flush st;
    (List.rev !out, Vstage.cache_hits st)
  in
  let inline, hits_inline = run 0 in
  let pooled, hits_pooled = run 4 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "pooled callbacks match inline, in submission order" inline pooled;
  check Alcotest.bool "repeats hit the result cache" true
    (hits_inline > 0 && hits_pooled > 0)

let test_vstage_prefetch_and_register () =
  let st = Vstage.create ~domains:4 () in
  let sk, pk = Schnorr.keypair_of_seed "prefetch" in
  let pk = Vstage.register st pk in
  check Alcotest.bool "registered key has its table" true (Schnorr.has_table pk);
  let items =
    List.init 8 (fun i ->
        let digest = Sha256.digest (Printf.sprintf "p-%d" i) in
        (pk, digest, Schnorr.sign sk digest))
  in
  Vstage.prefetch st ~cls:"test" ~principal:Profile.Client_key items;
  let misses_after_prefetch = Vstage.cache_misses st in
  List.iter
    (fun (pk, digest, signature) ->
      check Alcotest.bool "prefetched verification" true
        (Vstage.verify_now st ~cls:"test" ~principal:Profile.Client_key pk digest
           ~signature))
    items;
  check Alcotest.int "bulk loop was all cache hits" misses_after_prefetch
    (Vstage.cache_misses st)

let () =
  Alcotest.run "iaccf_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "block boundaries" `Quick test_sha256_block_boundaries;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental;
          qtest prop_sha256_incremental_split;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "bignum",
        [
          Alcotest.test_case "basics" `Quick test_bignum_basics;
          Alcotest.test_case "sub negative" `Quick test_bignum_sub_negative;
          Alcotest.test_case "hex" `Quick test_bignum_hex;
          Alcotest.test_case "divmod known" `Quick test_bignum_divmod_known;
          Alcotest.test_case "shift" `Quick test_bignum_shift;
          Alcotest.test_case "mask" `Quick test_bignum_mask;
          Alcotest.test_case "bytes" `Quick test_bignum_bytes;
          Alcotest.test_case "mod_pow" `Quick test_bignum_mod_pow;
          qtest prop_bignum_add_commutes;
          qtest prop_bignum_mul_matches_int;
          qtest prop_bignum_divmod;
          qtest prop_bignum_bytes_roundtrip;
          qtest prop_bignum_divmod_big;
          qtest prop_bignum_shift_mul;
        ] );
      ( "group",
        [
          Alcotest.test_case "reduce" `Quick test_group_reduce_matches_rem;
          Alcotest.test_case "pow" `Quick test_group_pow_matches_mod_pow;
          Alcotest.test_case "fermat" `Quick test_group_fermat;
          Alcotest.test_case "element bytes" `Quick test_group_element_bytes;
          Alcotest.test_case "fixed-base table" `Quick test_group_table_pow;
          qtest prop_group_pow_homomorphism;
          qtest prop_group_multi_pow;
        ] );
      ( "schnorr",
        [
          Alcotest.test_case "sign/verify" `Quick test_schnorr_sign_verify;
          Alcotest.test_case "wrong digest" `Quick test_schnorr_rejects_wrong_digest;
          Alcotest.test_case "wrong key" `Quick test_schnorr_rejects_wrong_key;
          Alcotest.test_case "tampered" `Quick test_schnorr_rejects_tampered_sig;
          Alcotest.test_case "deterministic" `Quick test_schnorr_deterministic;
          Alcotest.test_case "pk bytes" `Quick test_schnorr_pk_bytes_roundtrip;
          qtest prop_schnorr_roundtrip;
          qtest prop_schnorr_cross_rejects;
          Alcotest.test_case "precompute matches" `Quick
            test_schnorr_precompute_matches;
        ] );
      ( "parverify",
        [
          Alcotest.test_case "accepts" `Quick test_parverify_accepts;
          Alcotest.test_case "rejects bad job" `Quick test_parverify_rejects_bad_job;
          test_parverify_matches_sequential;
          Alcotest.test_case "pool survives raising tasks" `Quick
            test_pool_survives_raising_tasks;
        ] );
      ( "vstage",
        [
          qtest prop_vstage_matches_inline_under_flips;
          Alcotest.test_case "callback order + cache" `Quick
            test_vstage_callback_order_and_cache;
          Alcotest.test_case "prefetch + register" `Quick
            test_vstage_prefetch_and_register;
        ] );
      ( "digest/nonce",
        [
          Alcotest.test_case "digest32" `Quick test_digest32;
          Alcotest.test_case "nonce commitment" `Quick test_nonce_commitment;
          Alcotest.test_case "nonce derive" `Quick test_nonce_derive_distinct;
        ] );
    ]
