(** Local fleet supervision for [iaccf cluster] and the socket bench:
    spawn one serve process per manifest replica, wait for their listen
    sockets, tear down with SIGTERM and a SIGKILL fallback. *)

type child = { ch_id : int; ch_pid : int; ch_log : string }

val spawn : argv:string array -> log:string -> int
(** Start one child with stdout/stderr redirected to [log]; returns its
    pid. *)

val spawn_fleet :
  manifest:Manifest.t -> serve_argv:(id:int -> string array) -> child list
(** One child per manifest replica, logging to
    [<dir>/replica-<id>.log]. [serve_argv] builds each child's argv
    (e.g. [iaccf serve --manifest M --id N]). *)

val wait_ready : ?timeout_ms:float -> Manifest.t -> bool
(** Poll until every replica's listen socket accepts a connection;
    [false] on timeout (default 10 s). *)

val alive : int -> bool
(** Whether a spawned pid is still running (non-blocking reap). *)

val shutdown : ?grace_ms:float -> child list -> (int * Unix.process_status) list
(** SIGTERM each child, wait up to [grace_ms] (default 3 s) for clean
    exits, SIGKILL stragglers; returns each child's exit status. *)
