lib/sim/network.ml: Hashtbl Iaccf_util Latency List Sched
