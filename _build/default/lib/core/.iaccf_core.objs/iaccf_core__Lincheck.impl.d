lib/core/lincheck.ml: App Format Iaccf_kv Iaccf_types List Option Receipt String
