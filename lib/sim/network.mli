(** Simulated message-passing network.

    Delivers opaque ['msg] values between registered nodes with modelled
    latency, optional drops, and partitions. Channels are authenticated in
    the real system (§3.4); here the simulator itself guarantees the [src]
    it reports, and Byzantine behaviour is modelled at the node level by
    sending protocol messages with forged *contents* (signatures still fail
    unless the key is held). *)

type 'msg t

val create :
  sched:Sched.t ->
  latency:Latency.t ->
  ?drop_rng:Iaccf_util.Rng.t ->
  ?obs:Iaccf_obs.Obs.t ->
  unit ->
  'msg t
(** With [obs], message tallies land in that registry ([net.sent],
    [net.delivered], [net.dropped.cut/prob/unregistered]) and, when tracing
    is enabled, every send and drop emits a trace event (drops carry their
    cause). Without it the network keeps a private counting-only
    registry, so the accessors below always work. *)

val register : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Attach a node's message handler. Re-registering replaces the handler. *)

val unregister : 'msg t -> int -> unit

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue delivery; dropped silently if [dst] is unregistered, partitioned
    from [src], or hit by the drop probability. *)

val broadcast : 'msg t -> src:int -> dsts:int list -> 'msg -> unit

val set_drop_probability : 'msg t -> float -> unit
(** Uniform drop probability in [0,1]; requires [drop_rng]. *)

val partition : 'msg t -> int list -> int list -> unit
(** Cut links between the two groups (both directions). *)

val heal : 'msg t -> unit
(** Remove all partitions. *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int

(** {1 Drop accounting}

    Fault-injection experiments report loss rates from these: every sent
    message is eventually counted as delivered or as exactly one kind of
    drop (a message in flight is neither yet). *)

val messages_dropped : 'msg t -> int
(** Total drops: severed links + probabilistic loss + unregistered
    destinations. *)

val messages_dropped_cut : 'msg t -> int
(** Dropped because the link was cut by {!partition}. *)

val messages_dropped_prob : 'msg t -> int
(** Dropped by the {!set_drop_probability} loss draw. *)

val messages_dropped_unregistered : 'msg t -> int
(** Arrived for a destination with no registered handler. *)

val drop_rate : 'msg t -> float
(** [messages_dropped / messages_sent]; 0 before any send. *)
