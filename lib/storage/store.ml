module Entry = Iaccf_ledger.Entry
module Ledger = Iaccf_ledger.Ledger
module Tree = Iaccf_merkle.Tree
module Codec = Iaccf_util.Codec
module Vec = Iaccf_util.Vec
module Lru = Iaccf_util.Lru
module D = Iaccf_crypto.Digest32
module Obs = Iaccf_obs.Obs

exception Storage_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Storage_error s)) fmt

type fsync_policy = No_fsync | Fsync_always | Fsync_interval of int

type config = {
  dir : string;
  segment_bytes : int;
  fsync : fsync_policy;
  cache_capacity : int;
}

let default_config ~dir =
  { dir; segment_bytes = 1 lsl 20; fsync = Fsync_interval 64; cache_capacity = 256 }

type recovery_info = {
  ri_segments : int;
  ri_entries : int;
  ri_torn_frames : int;
  ri_torn_bytes : int;
  ri_root_verified : bool;
}

(* Where each entry lives: its segment (named by first index), the frame's
   offset and on-disk length, and the Merkle tree size after it — the last
   mirrors Ledger's slots so truncate can roll M back without re-reading. *)
type slot = { s_seg : int; s_off : int; s_len : int; s_msize : int }

type t = {
  cfg : config;
  readonly : bool;
  obs : Obs.t;
  owner : int; (* trace-event node id (e.g. the owning replica) *)
  c_appends : Obs.counter;
  c_append_bytes : Obs.counter;
  c_fsyncs : Obs.counter;
  c_truncates : Obs.counter;
  slots : slot Vec.t; (* entries [base, base + length), in order *)
  mutable base : int; (* first on-disk entry index (> 0 after a prune) *)
  mutable base_msize : int; (* Merkle tree size covering [0, base) *)
  tree : Tree.t;
  cache : (int, Entry.t) Lru.t;
  mutable tail_first : int;  (* first index of the open tail segment *)
  mutable tail_fd : Unix.file_descr option;
  mutable tail_size : int;
  mutable seg_count : int;
  mutable disk : int;
  mutable unsynced : int;
  mutable closed : bool;
  mutable recovered : recovery_info;
}

(* ------------------------------------------------------------------ *)
(* Paths and raw file helpers                                          *)

let seg_name first = Printf.sprintf "segment-%016d.iaccf" first
let seg_path t first = Filename.concat t.cfg.dir (seg_name first)
let root_path dir = Filename.concat dir "root.iaccf"
let prune_path dir = Filename.concat dir "prune.iaccf"
let audit_package_name = "audit-prefix.iapkg"
let audit_package_path dir = Filename.concat dir audit_package_name

let parse_seg_name name =
  match String.length name = 30 && String.sub name 0 8 = "segment-"
        && Filename.check_suffix name ".iaccf"
  with
  | true -> int_of_string_opt (String.sub name 8 16)
  | false -> None
  | exception _ -> None

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Root-of-trust file: the durably promised (length, Merkle root)      *)

let root_magic = "IACCF-ROOT-v1"

let encode_root ~length ~m_size ~(m_root : D.t) =
  Codec.encode (fun w ->
      Codec.W.bytes w root_magic;
      Codec.W.u64 w length;
      Codec.W.u64 w m_size;
      Codec.W.raw w (D.to_raw m_root))

let decode_root s =
  match
    Codec.decode s (fun r ->
        let magic = Codec.R.bytes r in
        if magic <> root_magic then raise (Codec.Decode_error "bad root magic");
        let length = Codec.R.u64 r in
        let m_size = Codec.R.u64 r in
        let m_root = D.of_raw (Codec.R.raw r D.size) in
        (length, m_size, m_root))
  with
  | v -> v
  | exception Codec.Decode_error m -> fail "corrupt root-of-trust file: %s" m

let write_file_atomic ~dir path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
      write_all fd data;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

let write_root_file t =
  let m_size = Tree.size t.tree in
  let data =
    encode_root ~length:(t.base + Vec.length t.slots) ~m_size
      ~m_root:(Tree.root t.tree)
  in
  write_file_atomic ~dir:t.cfg.dir (root_path t.cfg.dir) data

(* ------------------------------------------------------------------ *)
(* Prune marker: which prefix was compacted away, and the Merkle tree
   frontier needed to resume M without the pruned leaves.              *)

let prune_magic = "IACCF-PRUNE-v1"

let encode_prune ~base ~base_msize ~frontier =
  Codec.encode (fun w ->
      Codec.W.bytes w prune_magic;
      Codec.W.u64 w base;
      Codec.W.u64 w base_msize;
      Codec.W.list w (fun d -> Codec.W.raw w (D.to_raw d)) frontier)

let decode_prune s =
  match
    Codec.decode s (fun r ->
        let magic = Codec.R.bytes r in
        if magic <> prune_magic then raise (Codec.Decode_error "bad prune magic");
        let base = Codec.R.u64 r in
        let base_msize = Codec.R.u64 r in
        let frontier = Codec.R.list r (fun r -> D.of_raw (Codec.R.raw r D.size)) in
        (base, base_msize, frontier))
  with
  | v -> v
  | exception Codec.Decode_error m -> fail "corrupt prune marker: %s" m

(* ------------------------------------------------------------------ *)
(* Open + recovery                                                     *)

let append_slot t ~seg ~off ~len entry =
  if Entry.in_merkle_tree entry then Tree.append t.tree (Entry.leaf_digest entry);
  Vec.push t.slots { s_seg = seg; s_off = off; s_len = len; s_msize = Tree.size t.tree };
  t.disk <- t.disk + len

(* Merkle tree size after entry [length - 1]. Only defined for
   [length >= base]: anything shorter is inside the pruned prefix. *)
let msize_at t length =
  if length = 0 then 0
  else if length = t.base then t.base_msize
  else if length < t.base then
    fail "length %d is inside the pruned prefix (first retained entry %d)" length t.base
  else (Vec.get t.slots (length - 1 - t.base)).s_msize

(* Root the recovered prefix at [length] using the recorded tree sizes. *)
let m_root_at_length t length =
  if length = 0 then Tree.empty_root
  else begin
    let m_size = msize_at t length in
    if m_size = Tree.size t.tree then Tree.root t.tree
    else begin
      let tree = Tree.copy t.tree in
      Tree.truncate tree m_size;
      Tree.root tree
    end
  end

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map parse_seg_name
  |> List.sort compare

(* Scan one segment's bytes, appending recovered entries. [tail] enables
   torn-frame truncation; interior damage is unrecoverable. Returns the
   number of surviving bytes and the torn byte count (0 unless tail). *)
let scan_segment t ~seg ~tail data =
  let total = String.length data in
  let rec go off =
    match Frame.scan data ~pos:off with
    | Frame.End_of_input -> (off, 0)
    | Frame.Frame { payload; next } -> (
        match Entry.deserialize payload with
        | entry ->
            append_slot t ~seg ~off ~len:(next - off) entry;
            go next
        | exception Codec.Decode_error m ->
            if tail then (off, total - off)
            else fail "segment %s: undecodable entry at offset %d: %s" (seg_name seg) off m)
    | Frame.Torn { reason } ->
        if tail then (off, total - off)
        else fail "segment %s: torn frame at offset %d (%s) before the tail" (seg_name seg) off reason
  in
  go 0

let open_tail_fd t ~first ~size =
  let fd =
    Unix.openfile (seg_path t first) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  ignore (Unix.LargeFile.lseek fd (Int64.of_int size) Unix.SEEK_SET);
  t.tail_fd <- Some fd;
  t.tail_first <- first;
  t.tail_size <- size

let open_store ?(readonly = false) ?obs ?(owner = 0) cfg =
  if cfg.segment_bytes < Frame.header_bytes + 1 then
    invalid_arg "Store.open_store: segment_bytes too small";
  if readonly then begin
    if not (Sys.file_exists cfg.dir && Sys.is_directory cfg.dir) then
      fail "no store at %s" cfg.dir
  end
  else mkdir_p cfg.dir;
  let obs = match obs with Some o -> o | None -> Obs.passive () in
  (* A prune marker means the prefix [0, base) was compacted away: resume
     the binding tree M from its recorded frontier instead of replaying
     leaves we no longer hold. *)
  let base, base_msize, tree =
    if Sys.file_exists (prune_path cfg.dir) then begin
      let base, base_msize, frontier = decode_prune (read_file (prune_path cfg.dir)) in
      if base < 1 || base_msize < 0 || base_msize > base then
        fail "prune marker claims base %d with tree size %d" base base_msize;
      match Tree.of_frontier ~size:base_msize frontier with
      | tree -> (base, base_msize, tree)
      | exception Invalid_argument _ ->
          fail "prune marker frontier does not match tree size %d" base_msize
    end
    else (0, 0, Tree.create ())
  in
  let t =
    {
      cfg;
      readonly;
      obs;
      owner;
      c_appends = Obs.counter obs "storage.appends";
      c_append_bytes = Obs.counter obs "storage.append_bytes";
      c_fsyncs = Obs.counter obs "storage.fsyncs";
      c_truncates = Obs.counter obs "storage.truncates";
      slots = Vec.create ();
      base;
      base_msize;
      tree;
      cache = Lru.create ~capacity:cfg.cache_capacity;
      tail_first = 0;
      tail_fd = None;
      tail_size = 0;
      seg_count = 0;
      disk = 0;
      unsynced = 0;
      closed = false;
      recovered =
        {
          ri_segments = 0;
          ri_entries = 0;
          ri_torn_frames = 0;
          ri_torn_bytes = 0;
          ri_root_verified = false;
        };
    }
  in
  let segs = list_segments cfg.dir in
  (* Segments wholly behind the prune marker are leftovers of a crash
     between marker write and unlink; their contents live on in the audit
     package, so finish the unlink (read-only opens just skip them). *)
  let stale, segs = List.partition (fun seg -> seg < t.base) segs in
  if not readonly then List.iter (fun seg -> Sys.remove (seg_path t seg)) stale;
  let n_segs = List.length segs in
  let torn_frames = ref 0 and torn_bytes = ref 0 in
  List.iteri
    (fun k seg ->
      if seg <> t.base + Vec.length t.slots then
        fail "segment %s: expected first index %d" (seg_name seg)
          (t.base + Vec.length t.slots);
      let tail = k = n_segs - 1 in
      let data = read_file (seg_path t seg) in
      let survive, torn = scan_segment t ~seg ~tail data in
      if torn > 0 then begin
        incr torn_frames;
        torn_bytes := !torn_bytes + torn;
        (* Cut the damaged suffix so the file again ends on a frame edge.
           A read-only open (offline audit) must leave the evidence
           byte-identical, so it only skips the damaged bytes in memory. *)
        if not readonly then begin
          let fd = Unix.openfile (seg_path t seg) [ Unix.O_WRONLY ] 0o644 in
          Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
              Unix.LargeFile.ftruncate fd (Int64.of_int survive))
        end
      end)
    segs;
  (* A tail segment that lost every frame (crash during roll) is dropped. *)
  let live_segs =
    match Vec.last t.slots with
    | None ->
        if not readonly then List.iter (fun seg -> Sys.remove (seg_path t seg)) segs;
        []
    | Some last ->
        let live, dead = List.partition (fun seg -> seg <= last.s_seg) segs in
        if not readonly then List.iter (fun seg -> Sys.remove (seg_path t seg)) dead;
        live
  in
  t.seg_count <- List.length live_segs;
  (* Check the recovered prefix against the durable root-of-trust. *)
  let root_verified =
    if Sys.file_exists (root_path cfg.dir) then begin
      let length, m_size, m_root = decode_root (read_file (root_path cfg.dir)) in
      if length > t.base + Vec.length t.slots then
        fail "recovered %d entries but the root-of-trust covers %d: durable data lost"
          (t.base + Vec.length t.slots) length;
      if length < t.base then
        fail "root-of-trust covers %d entries but the prune marker claims %d were \
              compacted: marker cannot postdate the durable root"
          length t.base;
      if length > 0 && msize_at t length <> m_size then
        fail "root-of-trust tree size mismatch at length %d" length;
      if not (D.equal (m_root_at_length t length) m_root) then
        fail "recovered Merkle root does not match the root-of-trust at length %d" length;
      true
    end
    else false
  in
  (match Vec.last t.slots with
  | Some last when not readonly ->
      open_tail_fd t ~first:last.s_seg ~size:(last.s_off + last.s_len)
  | Some _ | None -> ());
  t.recovered <-
    {
      ri_segments = n_segs;
      ri_entries = Vec.length t.slots;
      ri_torn_frames = !torn_frames;
      ri_torn_bytes = !torn_bytes;
      ri_root_verified = root_verified;
    };
  t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let recovery t = t.recovered
let config t = t.cfg
let length t = t.base + Vec.length t.slots
let pruned_before t = t.base
let package_path t = audit_package_path t.cfg.dir
let segments t = t.seg_count
let disk_bytes t = t.disk
let m_root t = Tree.root t.tree
let m_size t = Tree.size t.tree
let cache_stats t = (Lru.hits t.cache, Lru.misses t.cache)

let check_open t op = if t.closed then invalid_arg ("Store." ^ op ^ ": store is closed")

let check_rw t op =
  check_open t op;
  if t.readonly then fail "Store.%s: store was opened read-only" op

(* ------------------------------------------------------------------ *)
(* Append path                                                         *)

let sync t =
  check_rw t "sync";
  (match t.tail_fd with Some fd -> Unix.fsync fd | None -> ());
  write_root_file t;
  Obs.incr t.c_fsyncs;
  Obs.instant t.obs ~node:t.owner ~cat:"storage" ~name:"storage.fsync"
    ~args:[ ("entries", string_of_int (length t)) ]
    ();
  t.unsynced <- 0

let roll_segment t =
  (match t.tail_fd with
  | Some fd ->
      (* The finished segment is immutable from here on: make it durable
         before anything lands in its successor. *)
      Unix.fsync fd;
      Obs.incr t.c_fsyncs;
      Unix.close fd
  | None -> ());
  t.tail_fd <- None;
  open_tail_fd t ~first:(length t) ~size:0;
  t.seg_count <- t.seg_count + 1

let append t entry =
  check_rw t "append";
  let frame = Frame.encode (Entry.serialize entry) in
  let len = String.length frame in
  if t.tail_fd = None || (t.tail_size > 0 && t.tail_size + len > t.cfg.segment_bytes)
  then roll_segment t;
  let fd = Option.get t.tail_fd in
  write_all fd frame;
  let index = length t in
  append_slot t ~seg:t.tail_first ~off:t.tail_size ~len entry;
  t.tail_size <- t.tail_size + len;
  Lru.put t.cache index entry;
  Obs.incr t.c_appends;
  Obs.add t.c_append_bytes len;
  if Obs.tracing_enabled t.obs then
    Obs.instant t.obs ~node:t.owner ~cat:"storage" ~name:"storage.append"
      ~args:[ ("index", string_of_int index); ("bytes", string_of_int len) ]
      ();
  t.unsynced <- t.unsynced + 1;
  (match t.cfg.fsync with
  | Fsync_always -> sync t
  | Fsync_interval n when t.unsynced >= n -> sync t
  | Fsync_interval _ | No_fsync -> ());
  index

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

let get t i =
  check_open t "get";
  if i < 0 || i >= length t then invalid_arg "Store.get: index out of range";
  if i < t.base then
    fail "Store.get: entry %d was pruned (first retained entry %d); read it from \
          the audit package" i t.base;
  match Lru.find t.cache i with
  | Some e -> e
  | None ->
      let slot = Vec.get t.slots (i - t.base) in
      let ic = open_in_bin (seg_path t slot.s_seg) in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            seek_in ic slot.s_off;
            really_input_string ic slot.s_len)
      in
      let entry =
        match Frame.scan raw ~pos:0 with
        | Frame.Frame { payload; _ } -> Entry.deserialize payload
        | Frame.Torn { reason } -> fail "entry %d: frame damaged on disk (%s)" i reason
        | Frame.End_of_input -> assert false
      in
      Lru.put t.cache i entry;
      entry

(* ------------------------------------------------------------------ *)
(* Truncation (view-change rollback)                                   *)

let truncate t n =
  check_rw t "truncate";
  if n < 1 then invalid_arg "Store.truncate: cannot drop the genesis";
  if n <= t.base then
    fail "Store.truncate: cannot roll back to %d, entries before %d were pruned"
      n t.base;
  if n < length t then begin
    Obs.incr t.c_truncates;
    Obs.instant t.obs ~node:t.owner ~cat:"storage" ~name:"storage.truncate"
      ~args:[ ("to", string_of_int n); ("from", string_of_int (length t)) ]
      ();
    let last = Vec.get t.slots (n - 1 - t.base) in
    let cut = last.s_off + last.s_len in
    for i = n to length t - 1 do
      let s = Vec.get t.slots (i - t.base) in
      t.disk <- t.disk - s.s_len;
      Lru.remove t.cache i;
      if
        s.s_seg <> last.s_seg
        && (i = n || (Vec.get t.slots (i - 1 - t.base)).s_seg <> s.s_seg)
      then begin
        Sys.remove (seg_path t s.s_seg);
        t.seg_count <- t.seg_count - 1
      end
    done;
    Vec.truncate t.slots (n - t.base);
    Tree.truncate t.tree last.s_msize;
    (match t.tail_fd with Some fd -> Unix.close fd | None -> ());
    t.tail_fd <- None;
    let fd = Unix.openfile (seg_path t last.s_seg) [ Unix.O_WRONLY ] 0o644 in
    Unix.LargeFile.ftruncate fd (Int64.of_int cut);
    ignore (Unix.LargeFile.lseek fd (Int64.of_int cut) Unix.SEEK_SET);
    t.tail_fd <- Some fd;
    t.tail_first <- last.s_seg;
    t.tail_size <- cut;
    (* A rollback is a deliberate history change: refresh the root-of-trust
       now so a crash cannot resurrect the truncated suffix's promise. *)
    sync t
  end

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)

(* Drop whole segments strictly behind [upto], but only after the pruned
   prefix is safe in the cumulative audit package: accountability evidence
   must survive compaction, so the package always covers [0, max so far)
   from genesis and is re-verified against the store's own Merkle history
   before any unlink. Crash ordering: sync -> package -> prune marker ->
   unlink; every intermediate state reopens correctly (a marker without
   unlinks just finishes the unlink on open). *)
let prune_before t upto =
  check_rw t "prune_before";
  if upto < 1 || upto > length t then
    invalid_arg "Store.prune_before: index out of range";
  (* The cut lands on a segment boundary at or before [upto]; the open
     tail segment itself survives even when it starts before [upto]. *)
  let cut = ref t.base in
  Vec.iter
    (fun s -> if s.s_seg <= upto && s.s_seg > !cut then cut := s.s_seg)
    t.slots;
  let cut = !cut in
  if cut <= t.base then 0
  else begin
    sync t;
    let pkg_path = package_path t in
    let prev_entries =
      if Sys.file_exists pkg_path then (Package.read_file pkg_path).Package.pkg_entries
      else if t.base > 0 then
        fail "prune_before: audit package %s is missing but entries before %d \
              were already pruned" pkg_path t.base
      else []
    in
    let prev_end = List.length prev_entries in
    if prev_end < t.base then
      fail "prune_before: audit package covers only %d entries but entries \
            before %d were already pruned" prev_end t.base;
    let pkg_end = max prev_end upto in
    if pkg_end > prev_end then begin
      let entries =
        prev_entries @ List.init (pkg_end - prev_end) (fun i -> get t (prev_end + i))
      in
      let pkg = Package.of_entries entries in
      if not (D.equal pkg.Package.pkg_m_root (m_root_at_length t pkg_end)) then
        fail
          "prune_before: audit package would not reproduce the store's Merkle \
           root at %d (stale or foreign %s?)"
          pkg_end audit_package_name;
      Package.write_file pkg_path pkg
    end;
    let cut_msize = msize_at t cut in
    let frontier =
      let tree = Tree.copy t.tree in
      Tree.truncate tree cut_msize;
      Tree.frontier tree
    in
    write_file_atomic ~dir:t.cfg.dir (prune_path t.cfg.dir)
      (encode_prune ~base:cut ~base_msize:cut_msize ~frontier);
    (* The marker is durable: from here on a crash leaves at worst stale
       pre-cut segments, which open_store unlinks. *)
    let dropped = cut - t.base in
    let dropped_bytes = ref 0 in
    for i = t.base to cut - 1 do
      let s = Vec.get t.slots (i - t.base) in
      dropped_bytes := !dropped_bytes + s.s_len;
      Lru.remove t.cache i;
      if i = t.base || (Vec.get t.slots (i - 1 - t.base)).s_seg <> s.s_seg then begin
        Sys.remove (seg_path t s.s_seg);
        t.seg_count <- t.seg_count - 1
      end
    done;
    fsync_dir t.cfg.dir;
    let live = Vec.sub_list t.slots dropped (Vec.length t.slots - dropped) in
    Vec.truncate t.slots 0;
    List.iter (Vec.push t.slots) live;
    t.disk <- t.disk - !dropped_bytes;
    t.base <- cut;
    t.base_msize <- cut_msize;
    Obs.incr (Obs.counter t.obs "storage.prunes");
    Obs.add (Obs.counter t.obs "storage.pruned_entries") dropped;
    Obs.add (Obs.counter t.obs "storage.pruned_bytes") !dropped_bytes;
    Obs.instant t.obs ~node:t.owner ~cat:"storage" ~name:"storage.prune"
      ~args:
        [
          ("base", string_of_int cut);
          ("entries", string_of_int dropped);
          ("bytes", string_of_int !dropped_bytes);
        ]
      ();
    dropped
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let close t =
  if not t.closed then begin
    if not t.readonly then sync t;
    (match t.tail_fd with Some fd -> Unix.close fd | None -> ());
    t.tail_fd <- None;
    t.closed <- true
  end

let crash t =
  if not t.closed then begin
    (match t.tail_fd with Some fd -> Unix.close fd | None -> ());
    t.tail_fd <- None;
    t.closed <- true
  end

(* ------------------------------------------------------------------ *)
(* Ledger integration                                                  *)

let to_ledger t =
  check_open t "to_ledger";
  if length t = 0 then fail "to_ledger: store is empty";
  if t.base > 0 then
    fail
      "to_ledger: entries before %d were pruned; reconstruct the full history \
       from the audit package (%s)"
      t.base audit_package_name;
  Ledger.of_entries (List.init (length t) (get t))

let attach ?(allow_rollback = false) t ledger =
  check_rw t "attach";
  let ll = Ledger.length ledger in
  let sl = length t in
  if ll < t.base then
    fail "attach: ledger holds %d entries but entries before %d were pruned" ll
      t.base;
  (* Prove agreement on the shared prefix BEFORE any destructive step: a
     mis-addressed or diverging ledger must never cost persisted history. *)
  let common = min sl ll in
  if
    common > 0
    && not (D.equal (m_root_at_length t common) (Ledger.m_root_at ledger common))
  then fail "attach: persisted prefix diverges from the ledger (common prefix %d)" common;
  if sl > ll then begin
    (* Shrinking the store drops entries that may have been durably synced.
       That is only legitimate when the caller has already established the
       suffix is an uncommitted crash artifact (cold-start replay). *)
    if not allow_rollback then
      fail
        "attach: store holds %d entries but the ledger only %d; refusing to drop \
         persisted history (recover via Replica cold-start or a fresh directory)"
        sl ll;
    truncate t ll
  end;
  for i = common to ll - 1 do
    ignore (append t (Ledger.get ledger i))
  done;
  Ledger.set_sink ledger
    (Some
       {
         Ledger.sink_append =
           (fun i entry ->
             let j = append t entry in
             (* The store must mirror the ledger index-for-index; drift means
                the two histories no longer describe the same prefix. *)
             if i <> j then
               fail "attach sink: ledger appended entry %d but the store wrote %d" i j);
         sink_truncate = (fun n -> truncate t n);
       })
