lib/crypto/group.mli: Bignum
