lib/core/app.mli: Iaccf_crypto Iaccf_kv Iaccf_types
