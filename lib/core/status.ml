(* Transaction status (CCF's GET /app/tx shape): the answer to "what
   happened to transaction ID view.seqno?". The reporting rules live in
   Replica.tx_status; the guarantee is that for any fixed ID a replica's
   answer never moves between Committed and Invalid in either direction —
   both are terminal. *)

type t = Unknown | Pending | Committed | Invalid

let to_string = function
  | Unknown -> "UNKNOWN"
  | Pending -> "PENDING"
  | Committed -> "COMMITTED"
  | Invalid -> "INVALID"

let of_string = function
  | "UNKNOWN" -> Some Unknown
  | "PENDING" -> Some Pending
  | "COMMITTED" -> Some Committed
  | "INVALID" -> Some Invalid
  | _ -> None

let equal (a : t) (b : t) = a = b

(* A status can only move along UNKNOWN -> PENDING -> {COMMITTED|INVALID};
   the two terminal states never flip into each other. PENDING -> UNKNOWN
   is also disallowed: once a replica has seen the sequence number it never
   forgets it. *)
let transition_ok ~from ~to_ =
  match (from, to_) with
  | Unknown, _ -> true
  | Pending, (Pending | Committed | Invalid) -> true
  | Pending, Unknown -> false
  | Committed, to_ -> to_ = Committed
  | Invalid, to_ -> to_ = Invalid

type txid = { view : int; seqno : int }

let txid_to_string { view; seqno } = Printf.sprintf "%d.%d" view seqno

let txid_of_string s =
  match String.index_opt s '.' with
  | None -> None
  | Some i -> (
      try
        Some
          {
            view = int_of_string (String.sub s 0 i);
            seqno = int_of_string (String.sub s (i + 1) (String.length s - i - 1));
          }
      with _ -> None)
