(** Append-only Merkle tree over 32-byte leaf digests.

    L-PBFT maintains one tree [M] over all ledger entries and one per-batch
    tree [G] over the batch's transaction entries (§3.1, Fig. 3). Both are
    instances of this module.

    The hashing scheme is RFC 6962's Merkle Tree Hash: leaves are hashed with
    a [0x00] prefix and interior nodes with a [0x01] prefix (domain
    separation prevents leaf/node confusion attacks); an [n]-leaf tree splits
    at the largest power of two smaller than [n]. Roots and audit paths are
    therefore a pure function of the leaf sequence, which is what lets
    receipts be checked by anyone.

    Appends are O(log n) amortized. [truncate] supports roll-back of
    speculatively executed batches (Appx. A, Lemma 1): nodes are only ever
    removed from the right. *)

type t

val create : unit -> t

val empty_root : Iaccf_crypto.Digest32.t
(** Root of the zero-leaf tree (hash of the empty string, per RFC 6962). *)

val size : t -> int
val append : t -> Iaccf_crypto.Digest32.t -> unit

val append_data : t -> string -> unit
(** [append_data t s] appends the leaf digest of raw data [s]. *)

val root : t -> Iaccf_crypto.Digest32.t

val leaf : t -> int -> Iaccf_crypto.Digest32.t
(** The i-th leaf digest (as appended, before leaf-hashing). *)

val truncate : t -> int -> unit
(** [truncate t n] rolls the tree back to its first [n] leaves. *)

val path : t -> int -> Iaccf_crypto.Digest32.t list
(** [path t i] is the audit path for leaf [i]: the sibling digests from the
    leaf to the root ([S] in the paper's receipts).
    @raise Invalid_argument if [i] is out of range. *)

val verify_path :
  leaf:Iaccf_crypto.Digest32.t ->
  index:int ->
  size:int ->
  path:Iaccf_crypto.Digest32.t list ->
  root:Iaccf_crypto.Digest32.t ->
  bool
(** Recompute the root from a leaf digest and its audit path; [true] iff it
    matches [root]. Pure function: used by clients and auditors that do not
    hold the tree. *)

val leaf_hash : Iaccf_crypto.Digest32.t -> Iaccf_crypto.Digest32.t
val node_hash : Iaccf_crypto.Digest32.t -> Iaccf_crypto.Digest32.t -> Iaccf_crypto.Digest32.t

val root_of_leaves : Iaccf_crypto.Digest32.t list -> Iaccf_crypto.Digest32.t
(** Root of a tree over the given leaves, without building a [t]. *)

val copy : t -> t

val frontier : t -> Iaccf_crypto.Digest32.t list
(** The peaks of the tree's binary decomposition, highest level first: one
    interior-node (or leaf-hash) digest per set bit of [size t]. Together
    with the size these determine the root and every future append, which
    is what lets a pruned store resume its tree without the leaves. *)

val of_frontier : size:int -> Iaccf_crypto.Digest32.t list -> t
(** Rebuild a tree of [size] leaves from its [frontier] (as returned by
    {!frontier}: highest level first). The result supports [append],
    [root], [size] and [truncate n] for [n >= size] exactly as the
    original tree; [leaf], [path] and [truncate] below [size] are
    undefined (they would read pruned nodes).
    @raise Invalid_argument if the peak count does not match [size]. *)
