(* End-to-end L-PBFT protocol tests: honest runs, receipts, checkpoints,
   batching, pipelining, straggler catch-up, and view changes. *)

open Iaccf_core
module Config = Iaccf_types.Config
module Message = Iaccf_types.Message
module Ledger = Iaccf_ledger.Ledger
module Entry = Iaccf_ledger.Entry
module D = Iaccf_crypto.Digest32

let check = Alcotest.check

let submit_and_wait cluster client n =
  let outcomes = ref [] in
  for i = 1 to n do
    Client.submit client ~proc:"counter/add" ~args:(string_of_int i)
      ~on_complete:(fun oc -> outcomes := oc :: !outcomes)
      ()
  done;
  let done_ = Cluster.run_until cluster (fun () -> List.length !outcomes = n) in
  if not done_ then
    Alcotest.failf "timed out: %d/%d completed" (List.length !outcomes) n;
  List.rev !outcomes

let test_single_transaction () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  match submit_and_wait cluster client 1 with
  | [ oc ] ->
      check Alcotest.(result string string) "output" (Ok "1") oc.Client.oc_output;
      check Alcotest.bool "receipt index positive" true (oc.Client.oc_index > 0)
  | _ -> Alcotest.fail "expected one outcome"

let test_many_transactions_sequential_counter () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  let outcomes = submit_and_wait cluster client 30 in
  check Alcotest.int "all completed" 30 (List.length outcomes);
  (* The counter procedure returns the running sum: all adds applied in
     some serial order, so the set of outputs is {1*?…} — with one client
     submitting deltas 1..30, final counter = sum 1..30. *)
  let kv = Replica.store (Cluster.replica cluster 0) in
  check
    Alcotest.(option string)
    "final counter" (Some "465")
    (Iaccf_kv.Hamt.find "counter" (Iaccf_kv.Store.map kv))

let test_replicas_agree_on_ledger () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_and_wait cluster client 20);
  Cluster.run cluster ~ms:200.0;
  let roots =
    List.map
      (fun r ->
        let l = Replica.ledger r in
        (* Compare the committed prefix: truncate virtual differences by
           comparing roots at the shortest ledger length. *)
        (Ledger.length l, Ledger.m_root l))
      (Cluster.replicas cluster)
  in
  let min_len = List.fold_left (fun acc (l, _) -> min acc l) max_int roots in
  let prefix_roots =
    List.map
      (fun r -> D.to_hex (Ledger.m_root_at (Replica.ledger r) min_len))
      (Cluster.replicas cluster)
  in
  match prefix_roots with
  | first :: rest ->
      List.iteri
        (fun i r -> check Alcotest.string (Printf.sprintf "replica %d" (i + 1)) first r)
        rest
  | [] -> Alcotest.fail "no replicas"

let test_receipts_verify_offline () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  let outcomes = submit_and_wait cluster client 5 in
  let cfg = (Cluster.genesis cluster).Iaccf_types.Genesis.initial_config in
  let service = Iaccf_types.Genesis.hash (Cluster.genesis cluster) in
  List.iter
    (fun oc ->
      match Receipt.verify ~config:cfg ~service oc.Client.oc_receipt with
      | Ok () -> ()
      | Error e -> Alcotest.failf "receipt failed: %s" e)
    outcomes

let test_receipt_rejects_tampered_output () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  let outcomes = submit_and_wait cluster client 1 in
  let oc = List.hd outcomes in
  let receipt = oc.Client.oc_receipt in
  let cfg = (Cluster.genesis cluster).Iaccf_types.Genesis.initial_config in
  let service = Iaccf_types.Genesis.hash (Cluster.genesis cluster) in
  match receipt.Receipt.subject with
  | Receipt.Tx_subject s ->
      let tampered_tx =
        {
          s.tx with
          Iaccf_types.Batch.result =
            { s.tx.Iaccf_types.Batch.result with Iaccf_types.Batch.output = App.output_ok "1000000" };
        }
      in
      let tampered =
        { receipt with Receipt.subject = Receipt.Tx_subject { s with tx = tampered_tx } }
      in
      check Alcotest.bool "tampered receipt rejected" true
        (Result.is_error (Receipt.verify ~config:cfg ~service tampered))
  | Receipt.Batch_subject -> Alcotest.fail "expected tx subject"

let test_checkpoints_taken () =
  let params =
    { Replica.default_params with checkpoint_interval = 10; max_batch = 5 }
  in
  let cluster = Cluster.make ~n:4 ~params () in
  let client = Cluster.add_client cluster () in
  ignore (submit_and_wait cluster client 60);
  Cluster.run cluster ~ms:500.0;
  let r0 = Cluster.replica cluster 0 in
  check Alcotest.bool "several checkpoints" true
    ((Replica.stats r0).Replica.checkpoints_taken >= 1);
  (* Checkpoint batches appear in the ledger. *)
  let cp_batches = ref 0 in
  Ledger.iteri
    (fun _ e ->
      match e with
      | Entry.Pre_prepare pp -> (
          match pp.Message.kind with
          | Iaccf_types.Batch.Checkpoint _ -> incr cp_batches
          | _ -> ())
      | _ -> ())
    (Replica.ledger r0);
  check Alcotest.bool "checkpoint batches in ledger" true (!cp_batches >= 1)

let test_multiple_clients () =
  let cluster = Cluster.make ~n:4 () in
  let c1 = Cluster.add_client cluster () in
  let c2 = Cluster.add_client cluster () in
  let total = ref 0 in
  for _ = 1 to 10 do
    Client.submit c1 ~proc:"counter/add" ~args:"1"
      ~on_complete:(fun _ -> incr total)
      ();
    Client.submit c2 ~proc:"counter/add" ~args:"2"
      ~on_complete:(fun _ -> incr total)
      ()
  done;
  let ok = Cluster.run_until cluster (fun () -> !total = 20) in
  check Alcotest.bool "all completed" true ok;
  let kv = Replica.store (Cluster.replica cluster 0) in
  check
    Alcotest.(option string)
    "final counter" (Some "30")
    (Iaccf_kv.Hamt.find "counter" (Iaccf_kv.Store.map kv))

let test_seven_replicas () =
  let cluster = Cluster.make ~n:7 () in
  let client = Cluster.add_client cluster () in
  let outcomes = submit_and_wait cluster client 10 in
  check Alcotest.int "completed" 10 (List.length outcomes);
  (* N=7 -> f=2 -> quorum 5: receipts carry 4 prepare signatures. *)
  let oc = List.hd outcomes in
  check Alcotest.int "prepare sigs" 4
    (List.length oc.Client.oc_receipt.Receipt.prepare_sigs)

let test_view_change_on_primary_failure () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  (* Commit some work under view 0. *)
  ignore (submit_and_wait cluster client 5);
  (* Kill the primary (replica 0 in view 0). *)
  Replica.stop (Cluster.replica cluster 0);
  let completed_before = Client.completed client in
  for i = 1 to 5 do
    Client.submit client ~proc:"counter/add" ~args:(string_of_int (100 + i)) ()
  done;
  let ok =
    Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () ->
        Client.completed client = completed_before + 5)
  in
  check Alcotest.bool "progress after view change" true ok;
  let r1 = Cluster.replica cluster 1 in
  check Alcotest.bool "view advanced" true (Replica.view r1 >= 1)

let test_view_change_preserves_committed_state () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_and_wait cluster client 10);
  Replica.stop (Cluster.replica cluster 0);
  let before = Client.completed client in
  for _ = 1 to 5 do
    Client.submit client ~proc:"counter/add" ~args:"1" ()
  done;
  let ok =
    Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () ->
        Client.completed client = before + 5)
  in
  check Alcotest.bool "completed" true ok;
  (* 1+2+..+10 = 55, plus 5 more = 60. *)
  let kv = Replica.store (Cluster.replica cluster 1) in
  check
    Alcotest.(option string)
    "counter survived view change" (Some "60")
    (Iaccf_kv.Hamt.find "counter" (Iaccf_kv.Store.map kv))

let test_straggler_catches_up () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  (* Partition replica 3 away from everyone. *)
  let net = Cluster.network cluster in
  Iaccf_sim.Network.partition net [ 3 ] [ 0; 1; 2; 100 ];
  ignore (submit_and_wait cluster client 10);
  Iaccf_sim.Network.heal net;
  (* New traffic after healing reveals the gap; the straggler bulk-fetches. *)
  ignore (submit_and_wait cluster client 3);
  let r3 = Cluster.replica cluster 3 in
  let target = Replica.last_committed (Cluster.replica cluster 0) - 1 in
  let ok =
    Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () ->
        Replica.last_committed r3 >= target)
  in
  check Alcotest.bool "straggler caught up" true ok

(* Regression: a view change that rolls back a speculatively-executed
   checkpoint boundary must discard the speculative checkpoint and restore
   latest_cp_seqno. Before the fix, replicas that executed the boundary
   kept pointing at the rolled-back snapshot while replicas that never saw
   it stayed at the previous one; every new primary's checkpoint batch was
   then rejected by the other camp (validate_kind pins cp_seqno on both
   sides), no quorum ever formed, and the fleet livelocked at the
   boundary. Observed on the socket backend, where partitions-by-timing
   make asymmetric speculative execution routine. *)
let test_rollback_across_checkpoint_boundary () =
  let params =
    { Replica.default_params with checkpoint_interval = 4; max_batch = 1 }
  in
  let cluster = Cluster.make ~n:4 ~params () in
  let client = Cluster.add_client cluster () in
  (* Commit seqnos 1-2 only: seqno 3 needs a fresh request, so the
     checkpoint batch at 4 cannot auto-propose before the partition. *)
  ignore (submit_and_wait cluster client 2);
  Cluster.run cluster ~ms:100.0 (* drain in-flight commits *);
  let r0 = Cluster.replica cluster 0 in
  check Alcotest.int "committed below boundary" 2 (Replica.last_committed r0);
  (* Cut off replicas 2 and 3: the tx at seqno 3 and the checkpoint batch
     at the boundary (4) execute speculatively on 0 and 1 but cannot
     commit. *)
  let net = Cluster.network cluster in
  Iaccf_sim.Network.partition net [ 2; 3 ] [ 0; 1; 100 ];
  let recovered = ref 0 in
  for _ = 1 to 2 do
    Client.submit client ~proc:"counter/add" ~args:"1"
      ~on_complete:(fun _ -> incr recovered)
      ()
  done;
  Cluster.run cluster ~ms:200.0;
  check Alcotest.bool "boundary checkpoint taken speculatively" true
    ((Replica.stats r0).Replica.checkpoints_taken >= 1);
  check Alcotest.int "nothing committed during partition" 2
    (Replica.last_committed r0);
  (* Heal: the majority joins the minority's pending view change, the new
     primary rolls the speculative suffix back and re-proposes. Progress
     across the boundary is the property under test. *)
  Iaccf_sim.Network.heal net;
  let ok =
    Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () -> !recovered = 2)
  in
  check Alcotest.bool "progress across boundary after rollback" true ok;
  check Alcotest.bool "view changed" true
    (List.exists (fun r -> Replica.view r >= 1) (Cluster.replicas cluster));
  (* One view change must suffice. Without the latest_cp_seqno restore the
     fleet splits into camps that reject each other's checkpoint batch at
     seqno 4 and only reconverges after every camp has served (and failed)
     a turn as primary — views 2-3 here, and unboundedly long under the
     socket backend's exponential view-change backoff. *)
  check Alcotest.bool "recovered in a single view change" true
    (List.for_all (fun r -> Replica.view r <= 1) (Cluster.replicas cluster));
  (* The next boundary (8) must seal the re-taken checkpoint cleanly. *)
  ignore (submit_and_wait cluster client 4);
  check
    Alcotest.(option string)
    "counter consistent after recovery" (Some "15")
    (Iaccf_kv.Hamt.find "counter"
       (Iaccf_kv.Store.map (Replica.store (Cluster.replica cluster 1))))

let test_nonreceipt_variant_runs () =
  let params =
    { Replica.default_params with variant = Variant.no_receipt }
  in
  let cluster = Cluster.make ~n:4 ~params () in
  let client = Cluster.add_client cluster ~verify_receipts:false () in
  (* Without replyx the client never assembles receipts; measure commit. *)
  for _ = 1 to 5 do
    Client.submit client ~proc:"counter/add" ~args:"1" ()
  done;
  let r0 = Cluster.replica cluster 0 in
  let ok =
    Cluster.run_until cluster (fun () -> (Replica.stats r0).Replica.txs_committed >= 5)
  in
  check Alcotest.bool "commits without receipts" true ok

let test_min_index_ordering () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  let first = submit_and_wait cluster client 1 in
  let idx1 = (List.hd first).Client.oc_index in
  (* The client raises min_index past the first receipt; the second
     transaction must land at a strictly larger index. *)
  let second = submit_and_wait cluster client 1 in
  let idx2 = (List.hd second).Client.oc_index in
  check Alcotest.bool "indices increase" true (idx2 > idx1);
  check Alcotest.bool "min_index advanced" true (Client.min_index client > idx1)

let () =
  Alcotest.run "iaccf_protocol"
    [
      ( "happy path",
        [
          Alcotest.test_case "single tx" `Quick test_single_transaction;
          Alcotest.test_case "30 txs" `Quick test_many_transactions_sequential_counter;
          Alcotest.test_case "ledger agreement" `Quick test_replicas_agree_on_ledger;
          Alcotest.test_case "receipts verify offline" `Quick test_receipts_verify_offline;
          Alcotest.test_case "tampered receipt rejected" `Quick
            test_receipt_rejects_tampered_output;
          Alcotest.test_case "checkpoints" `Quick test_checkpoints_taken;
          Alcotest.test_case "multiple clients" `Quick test_multiple_clients;
          Alcotest.test_case "seven replicas" `Quick test_seven_replicas;
          Alcotest.test_case "min-index ordering" `Quick test_min_index_ordering;
        ] );
      ( "faults",
        [
          Alcotest.test_case "view change" `Quick test_view_change_on_primary_failure;
          Alcotest.test_case "state survives view change" `Quick
            test_view_change_preserves_committed_state;
          Alcotest.test_case "straggler catch-up" `Quick test_straggler_catches_up;
          Alcotest.test_case "rollback across checkpoint boundary" `Quick
            test_rollback_across_checkpoint_boundary;
        ] );
      ( "variants",
        [ Alcotest.test_case "no-receipt variant" `Quick test_nonreceipt_variant_runs ] );
    ]
