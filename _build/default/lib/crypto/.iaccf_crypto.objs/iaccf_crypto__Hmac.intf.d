lib/crypto/hmac.mli:
