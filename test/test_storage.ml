(* Storage tests: segmented store round-trips, segment rolling, torn-write
   recovery (including a kill-after-N-appends crash matrix), truncation,
   cluster persistence under SmallBank, and ledger packages. *)

open Iaccf_storage
module Entry = Iaccf_ledger.Entry
module Ledger = Iaccf_ledger.Ledger
module Tree = Iaccf_merkle.Tree
module D = Iaccf_crypto.Digest32
module Schnorr = Iaccf_crypto.Schnorr
module Request = Iaccf_types.Request
module Batch = Iaccf_types.Batch
module Genesis = Iaccf_types.Genesis
module Config = Iaccf_types.Config
module Message = Iaccf_types.Message
module Bitmap = Iaccf_util.Bitmap
module Rng = Iaccf_util.Rng
module Cluster = Iaccf_core.Cluster
module Client = Iaccf_core.Client
module Replica = Iaccf_core.Replica
module Forge = Iaccf_core.Forge
module Enforcer = Iaccf_core.Enforcer
module Receipt = Iaccf_core.Receipt
module Audit = Iaccf_core.Audit
module Smallbank = Iaccf_app.Smallbank

let check = Alcotest.check
let digest_testable = Alcotest.testable D.pp_full D.equal

(* --- Scratch directories --- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "iaccf-storage-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf d;
  d

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let chop_bytes path n =
  let s = read_file path in
  write_file path (String.sub s 0 (max 0 (String.length s - n)))

let flip_byte path off =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0xff));
  write_file path (Bytes.to_string s)

let segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 8 && String.sub f 0 8 = "segment-")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let tail_segment dir = List.nth (segment_files dir) (List.length (segment_files dir) - 1)

(* --- Sample entries (same shapes as the ledger tests) --- *)

let make_genesis prefix =
  let members =
    List.init 4 (fun i ->
        let _, pk = Schnorr.keypair_of_seed (Printf.sprintf "%sm%d" prefix i) in
        { Config.member_name = Printf.sprintf "%sm%d" prefix i; member_pk = pk })
  in
  let base = { Config.config_no = 0; members; replicas = []; vote_threshold = 1 } in
  let replicas =
    List.init 4 (fun i ->
        let _, pk = Schnorr.keypair_of_seed (Printf.sprintf "%sr%d" prefix i) in
        let msk, _ = Schnorr.keypair_of_seed (Printf.sprintf "%sm%d" prefix i) in
        {
          Config.replica_id = i;
          operator = Printf.sprintf "%sm%d" prefix i;
          replica_pk = pk;
          endorsement =
            Schnorr.sign msk
              (D.to_raw (Config.endorsement_payload base ~replica_id:i ~pk));
        })
  in
  Genesis.make { base with Config.replicas }

let genesis = make_genesis "s"

let sample_request ?(seqno = 0) ?(proc = "p") () =
  let sk, pk = Schnorr.keypair_of_seed "storage-client" in
  Request.make ~sk ~client_pk:pk ~service:(Genesis.hash genesis)
    ~client_seqno:seqno ~proc ~args:"a" ()

let tx_entry ?(index = 2) ?(seqno = 0) () =
  Entry.Tx
    {
      Batch.request = sample_request ~seqno ();
      index;
      result = { Batch.output = "o"; write_set_hash = D.of_string "w" };
    }

let sample_pp ?(seqno = 1) () =
  let sk, _ = Schnorr.keypair_of_seed "sr0" in
  Entry.Pre_prepare
    {
      Message.view = 0;
      seqno;
      m_root = D.of_string "m";
      g_root = D.of_string "g";
      nonce_com = D.of_string "n";
      ev_bitmap = Iaccf_util.Bitmap.empty;
      gov_index = 0;
      cp_digest = D.of_string "c";
      kind = Batch.Regular;
      primary = 0;
      signature = Schnorr.sign sk (D.to_raw (D.of_string "x"));
    }

(* Genesis followed by an alternating pre-prepare/tx tail. *)
let sample_entries n =
  Entry.Genesis genesis
  :: List.init n (fun i ->
         if i mod 2 = 0 then sample_pp ~seqno:(i + 1) ()
         else tx_entry ~index:(i + 1) ~seqno:i ())

let open_cfg ?readonly ?(segment_bytes = 1 lsl 20) ?(fsync = Store.No_fsync)
    ?(cache_capacity = 256) dir =
  Store.open_store ?readonly { Store.dir; segment_bytes; fsync; cache_capacity }

let fill store entries = List.iter (fun e -> ignore (Store.append store e)) entries

let check_contents store entries =
  check Alcotest.int "length" (List.length entries) (Store.length store);
  List.iteri
    (fun i e ->
      check Alcotest.string
        (Printf.sprintf "entry %d" i)
        (Entry.serialize e)
        (Entry.serialize (Store.get store i)))
    entries;
  let ledger = Ledger.of_entries entries in
  check digest_testable "merkle root" (Ledger.m_root ledger) (Store.m_root store)

(* --- Store basics --- *)

let test_fresh_append_reopen () =
  let dir = fresh_dir () in
  let entries = sample_entries 10 in
  let s = open_cfg dir in
  fill s entries;
  let root = Store.m_root s in
  Store.close s;
  let s = open_cfg dir in
  let ri = Store.recovery s in
  check Alcotest.bool "root-of-trust verified" true ri.Store.ri_root_verified;
  check Alcotest.int "no torn frames" 0 ri.Store.ri_torn_frames;
  check digest_testable "root preserved" root (Store.m_root s);
  check_contents s entries;
  Store.close s

let test_segment_rolling () =
  let dir = fresh_dir () in
  let entries = sample_entries 40 in
  let s = open_cfg ~segment_bytes:512 dir in
  fill s entries;
  check Alcotest.bool
    (Printf.sprintf "rolled into several segments (got %d)" (Store.segments s))
    true
    (Store.segments s > 3);
  Store.close s;
  let s = open_cfg ~segment_bytes:512 dir in
  check Alcotest.int "segments preserved" (List.length (segment_files dir))
    (Store.segments s);
  check_contents s entries;
  (* The store keeps appending into the recovered tail. *)
  ignore (Store.append s (sample_pp ~seqno:99 ()));
  Store.close s;
  let s = open_cfg ~segment_bytes:512 dir in
  check_contents s (entries @ [ sample_pp ~seqno:99 () ]);
  Store.close s

let test_torn_tail_truncated () =
  let dir = fresh_dir () in
  let entries = sample_entries 8 in
  let s = open_cfg dir in
  fill s entries;
  Store.sync s;
  (* Two unsynced appends, then a kill mid-write: the last frame loses
     3 bytes. *)
  ignore (Store.append s (sample_pp ~seqno:90 ()));
  ignore (Store.append s (sample_pp ~seqno:91 ()));
  Store.crash s;
  chop_bytes (tail_segment dir) 3;
  let s = open_cfg dir in
  let ri = Store.recovery s in
  check Alcotest.int "torn frame truncated" 1 ri.Store.ri_torn_frames;
  check Alcotest.bool "torn bytes counted" true (ri.Store.ri_torn_bytes > 0);
  check Alcotest.bool "root-of-trust verified" true ri.Store.ri_root_verified;
  check_contents s (entries @ [ sample_pp ~seqno:90 () ]);
  Store.close s

let test_interior_corruption_rejected () =
  let dir = fresh_dir () in
  let s = open_cfg ~segment_bytes:512 dir in
  fill s (sample_entries 40);
  Store.close s;
  (* Damage in a non-tail segment is not a torn write; it must refuse to
     open rather than silently drop committed history. *)
  flip_byte (List.hd (segment_files dir)) 20;
  check Alcotest.bool "interior damage rejected" true
    (match open_cfg ~segment_bytes:512 dir with
    | (_ : Store.t) -> false
    | exception Store.Storage_error _ -> true)

let test_durable_prefix_protected () =
  let dir = fresh_dir () in
  let s = open_cfg dir in
  fill s (sample_entries 8);
  Store.close s;
  (* Everything was synced; chopping into the tail now cuts below the
     root-of-trust, which recovery must detect. *)
  chop_bytes (tail_segment dir) 1;
  check Alcotest.bool "loss of durable entries rejected" true
    (match open_cfg dir with
    | (_ : Store.t) -> false
    | exception Store.Storage_error _ -> true)

let test_truncate_durable () =
  let dir = fresh_dir () in
  let entries = sample_entries 12 in
  let s = open_cfg ~segment_bytes:512 dir in
  fill s entries;
  Store.truncate s 5;
  check Alcotest.int "in-memory truncated" 5 (Store.length s);
  Store.crash s;
  (* Truncation rewrote the root-of-trust before the crash, so reopening
     recovers exactly the five entries. *)
  let s = open_cfg ~segment_bytes:512 dir in
  let keep = List.filteri (fun i _ -> i < 5) entries in
  check_contents s keep;
  let extra = sample_pp ~seqno:77 () in
  ignore (Store.append s extra);
  Store.close s;
  let s = open_cfg ~segment_bytes:512 dir in
  check_contents s (keep @ [ extra ]);
  Store.close s

let test_entry_cache () =
  let dir = fresh_dir () in
  let entries = sample_entries 6 in
  let s = open_cfg dir in
  fill s entries;
  Store.close s;
  let s = open_cfg ~cache_capacity:4 dir in
  for _ = 1 to 3 do
    ignore (Store.get s 2)
  done;
  let hits, misses = Store.cache_stats s in
  check Alcotest.bool "cache hits recorded" true (hits >= 2);
  check Alcotest.bool "first read missed" true (misses >= 1);
  Store.close s

(* --- Kill-after-N-appends crash matrix --- *)

(* Append [total] entries with [synced] of them made durable, kill the
   process, then tear [chop] bytes off the tail segment. Recovery must keep
   at least the synced prefix, never invent entries, and rebuild a Merkle
   root that matches an in-memory ledger over the surviving prefix. *)
let crash_case ~total ~synced ~chop =
  let dir = fresh_dir () in
  let entries = sample_entries total in
  let s = open_cfg dir in
  let bytes_at_sync = ref 0 in
  List.iteri
    (fun i e ->
      ignore (Store.append s e);
      if i = synced then begin
        Store.sync s;
        bytes_at_sync := Store.disk_bytes s
      end)
    entries;
  let unsynced_bytes = Store.disk_bytes s - !bytes_at_sync in
  Store.crash s;
  let chop = min chop unsynced_bytes in
  chop_bytes (tail_segment dir) chop;
  let s = open_cfg dir in
  let ri = Store.recovery s in
  let len = Store.length s in
  let label fmt =
    Printf.ksprintf
      (fun m -> Printf.sprintf "total=%d synced=%d chop=%d: %s" total synced chop m)
      fmt
  in
  check Alcotest.bool (label "synced prefix survives") true (len >= synced + 1);
  check Alcotest.bool (label "no invented entries") true (len <= total + 1);
  check Alcotest.bool (label "root-of-trust verified") true ri.Store.ri_root_verified;
  let keep = List.filteri (fun i _ -> i < len) entries in
  check_contents s keep;
  (* The recovered store must accept appends and survive another cycle. *)
  let extra = sample_pp ~seqno:1000 () in
  ignore (Store.append s extra);
  Store.close s;
  let s = open_cfg dir in
  check_contents s (keep @ [ extra ]);
  Store.close s

let test_crash_matrix () =
  List.iter
    (fun (total, synced) ->
      List.iter
        (fun chop -> crash_case ~total ~synced ~chop)
        [ 0; 1; 7; 64; max_int ])
    [ (3, 0); (10, 4); (10, 9); (33, 15) ]

(* --- Attach safety: verify before anything destructive --- *)

let test_attach_divergence_preserves_store () =
  let dir = fresh_dir () in
  let entries = sample_entries 10 in
  let s = open_cfg dir in
  fill s entries;
  Store.sync s;
  (* A ledger of a different service: even with rollback explicitly allowed,
     attach must detect the diverging prefix before touching the store. *)
  let other = Ledger.create (make_genesis "x") in
  check Alcotest.bool "diverging attach rejected" true
    (match Store.attach ~allow_rollback:true s other with
    | () -> false
    | exception Store.Storage_error _ -> true);
  check_contents s entries;
  Store.close s;
  let s = open_cfg dir in
  check_contents s entries;
  Store.close s

let test_attach_refuses_rollback_by_default () =
  let dir = fresh_dir () in
  let entries = sample_entries 10 in
  let s = open_cfg dir in
  fill s entries;
  Store.sync s;
  let prefix = List.filteri (fun i _ -> i < 6) entries in
  let shorter = Ledger.of_entries prefix in
  (* Same service, shorter ledger: silently dropping synced history is
     refused unless the caller has vouched for the rollback. *)
  check Alcotest.bool "default attach refuses to shrink the store" true
    (match Store.attach s shorter with
    | () -> false
    | exception Store.Storage_error _ -> true);
  check_contents s entries;
  Store.attach ~allow_rollback:true s shorter;
  check_contents s prefix;
  (* The sink is live and index-checked: appends flow through. *)
  ignore (Ledger.append shorter (sample_pp ~seqno:42 ()));
  check Alcotest.int "sink write-through" (Ledger.length shorter) (Store.length s);
  check digest_testable "sink root tracks" (Ledger.m_root shorter) (Store.m_root s);
  Store.close s

(* --- Read-only opens (offline audit must not mutate evidence) --- *)

let dir_snapshot dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let test_readonly_open_untouched () =
  let dir = fresh_dir () in
  let entries = sample_entries 8 in
  let s = open_cfg dir in
  fill s entries;
  Store.sync s;
  (* One unsynced append, then a kill that tears the last frame. *)
  ignore (Store.append s (sample_pp ~seqno:50 ()));
  Store.crash s;
  chop_bytes (tail_segment dir) 2;
  let before = dir_snapshot dir in
  let s = open_cfg ~readonly:true dir in
  let ri = Store.recovery s in
  check Alcotest.int "synced prefix readable" 9 (Store.length s);
  check Alcotest.int "torn frame observed" 1 ri.Store.ri_torn_frames;
  check Alcotest.bool "root-of-trust verified" true ri.Store.ri_root_verified;
  check Alcotest.bool "appends refused" true
    (match Store.append s (sample_pp ~seqno:51 ()) with
    | (_ : int) -> false
    | exception Store.Storage_error _ -> true);
  let pkg = Package.of_entries (List.init (Store.length s) (Store.get s)) in
  check Alcotest.int "package built from read-only store" 9
    (List.length pkg.Package.pkg_entries);
  Store.close s;
  check Alcotest.bool "evidence byte-identical after audit" true
    (dir_snapshot dir = before)

(* --- Cluster persistence under SmallBank --- *)

let drive_smallbank ?client cluster ~txs ~seed =
  let client =
    match client with Some c -> c | None -> Cluster.add_client cluster ()
  in
  let rng = Rng.create (seed + 100) in
  let accounts = 8 in
  let ops =
    Smallbank.setup_ops ~accounts ~initial_balance:1000
    @ List.init txs (fun _ -> Smallbank.random_op rng ~accounts)
  in
  let total = List.length ops in
  let pending = ref ops in
  let completed = ref 0 in
  let receipts = ref [] in
  let rec submit_one () =
    match !pending with
    | [] -> ()
    | op :: rest ->
        pending := rest;
        Client.submit client ~proc:op.Smallbank.op_proc ~args:op.Smallbank.op_args
          ~on_complete:(fun oc ->
            incr completed;
            receipts := oc.Client.oc_receipt :: !receipts;
            submit_one ())
          ()
  in
  for _ = 1 to 8 do
    submit_one ()
  done;
  let ok =
    Cluster.run_until cluster ~timeout_ms:10_000_000.0 (fun () ->
        !completed >= total)
  in
  check Alcotest.bool "workload completed" true ok;
  List.rev !receipts

let test_smallbank_persist_reopen () =
  let dir = fresh_dir () in
  let persist = { (Store.default_config ~dir) with Store.fsync = Store.No_fsync } in
  let cluster = Cluster.make ~seed:5 ~n:4 ~app:(Smallbank.app ()) ~persist () in
  ignore (drive_smallbank cluster ~txs:12 ~seed:5);
  Cluster.sync_storage cluster;
  let ledger = Replica.ledger (Cluster.replica cluster 0) in
  let live = Option.get (Cluster.storage cluster 0) in
  check Alcotest.int "write-through length" (Ledger.length ledger)
    (Store.length live);
  (* Reopen replica 0's store from disk in a separate handle: the persisted
     ledger must match the in-memory one exactly. *)
  let s = open_cfg (Filename.concat dir "replica-0") in
  check Alcotest.int "reopened length" (Ledger.length ledger) (Store.length s);
  check digest_testable "reopened merkle root" (Ledger.m_root ledger)
    (Store.m_root s);
  let rebuilt = Store.to_ledger s in
  check digest_testable "rebuilt ledger root" (Ledger.m_root ledger)
    (Ledger.m_root rebuilt);
  check Alcotest.int "rebuilt byte totals" (Ledger.total_bytes ledger)
    (Ledger.total_bytes rebuilt);
  Store.close s

(* --- Cold-start restore: a restarted cluster replays its stores --- *)

let test_cluster_cold_restart () =
  let dir = fresh_dir () in
  let persist = { (Store.default_config ~dir) with Store.fsync = Store.No_fsync } in
  let cluster = Cluster.make ~seed:7 ~n:4 ~app:(Smallbank.app ()) ~persist () in
  ignore (drive_smallbank cluster ~txs:10 ~seed:7);
  let ledger1 = Replica.ledger (Cluster.replica cluster 0) in
  let len1 = Ledger.length ledger1 in
  let root1 = Ledger.m_root ledger1 in
  Cluster.close_storage cluster;
  (* "Fresh process": the same service seed reopens the same directories.
     Replicas must replay the persisted ledgers, never wipe them. *)
  let cluster2 = Cluster.make ~seed:7 ~n:4 ~app:(Smallbank.app ()) ~persist () in
  let ledger2 = Replica.ledger (Cluster.replica cluster2 0) in
  check Alcotest.int "restored length" len1 (Ledger.length ledger2);
  check digest_testable "restored root" root1 (Ledger.m_root ledger2);
  (* The restored service keeps committing: new operations arrive under a
     fresh client identity (the original identity's requests are already in
     the replicas' dedup tables). *)
  ignore (Cluster.add_client cluster2 ());
  let c2 = Cluster.add_client cluster2 () in
  ignore (drive_smallbank ~client:c2 cluster2 ~txs:6 ~seed:8);
  Cluster.sync_storage cluster2;
  let live = Option.get (Cluster.storage cluster2 0) in
  let ledger2 = Replica.ledger (Cluster.replica cluster2 0) in
  check Alcotest.bool "history grew after restart" true (Ledger.length ledger2 > len1);
  check Alcotest.int "write-through continued" (Ledger.length ledger2)
    (Store.length live);
  check digest_testable "store root tracks restarted ledger" (Ledger.m_root ledger2)
    (Store.m_root live);
  Cluster.close_storage cluster2;
  let s = open_cfg (Filename.concat dir "replica-0") in
  check digest_testable "full history reopens clean" (Ledger.m_root ledger2)
    (Store.m_root s);
  Store.close s

let test_restart_drops_partial_batch () =
  let dir = fresh_dir () in
  let persist = { (Store.default_config ~dir) with Store.fsync = Store.No_fsync } in
  let cluster = Cluster.make ~seed:9 ~n:4 ~app:(Smallbank.app ()) ~persist () in
  ignore (drive_smallbank cluster ~txs:8 ~seed:9);
  let ledger1 = Replica.ledger (Cluster.replica cluster 0) in
  let len1 = Ledger.length ledger1 in
  let root1 = Ledger.m_root ledger1 in
  Cluster.close_storage cluster;
  (* A crash mid-batch: a pre-prepare and one of its transactions reach
     replica 0's disk without the rest of the batch. *)
  let s = open_cfg (Filename.concat dir "replica-0") in
  ignore (Store.append s (sample_pp ~seqno:9999 ()));
  ignore (Store.append s (tx_entry ~index:9999 ~seqno:9999 ()));
  Store.close s;
  let cluster2 = Cluster.make ~seed:9 ~n:4 ~app:(Smallbank.app ()) ~persist () in
  let ledger2 = Replica.ledger (Cluster.replica cluster2 0) in
  check Alcotest.int "partial batch dropped on restore" len1 (Ledger.length ledger2);
  check digest_testable "root restored" root1 (Ledger.m_root ledger2);
  let live = Option.get (Cluster.storage cluster2 0) in
  check Alcotest.int "store rolled back to the replayed prefix" len1
    (Store.length live);
  Cluster.close_storage cluster2

let test_restart_refuses_deep_damage () =
  let dir = fresh_dir () in
  let persist = { (Store.default_config ~dir) with Store.fsync = Store.No_fsync } in
  let cluster = Cluster.make ~seed:13 ~n:4 ~app:(Smallbank.app ()) ~persist () in
  ignore (drive_smallbank cluster ~txs:6 ~seed:13);
  Cluster.close_storage cluster;
  (* An unreplayable suffix that is NOT a trailing partial batch — a bogus
     complete batch followed by another pre-prepare. Restore must refuse
     rather than silently truncate what claims to be history. *)
  let s = open_cfg (Filename.concat dir "replica-0") in
  let before = Store.length s in
  ignore (Store.append s (sample_pp ~seqno:9999 ()));
  ignore (Store.append s (tx_entry ~index:9999 ~seqno:9999 ()));
  ignore (Store.append s (sample_pp ~seqno:10000 ()));
  Store.close s;
  check Alcotest.bool "deeply damaged store refused" true
    (match Cluster.make ~seed:13 ~n:4 ~app:(Smallbank.app ()) ~persist () with
    | (_ : Cluster.t) -> false
    | exception Store.Storage_error _ -> true);
  (* Nothing was destroyed: the store still holds everything it held. *)
  let s = open_cfg (Filename.concat dir "replica-0") in
  check Alcotest.int "evidence preserved" (before + 3) (Store.length s);
  Store.close s

(* --- Ledger packages --- *)

let sample_package () =
  let ledger = Ledger.of_entries (sample_entries 6) in
  Package.of_ledger ~receipts:[ "blob-a"; "blob-bb" ] ledger

let test_package_roundtrip () =
  let pkg = sample_package () in
  let pkg' = Package.deserialize (Package.serialize pkg) in
  check Alcotest.int "entries" (List.length pkg.Package.pkg_entries)
    (List.length pkg'.Package.pkg_entries);
  check Alcotest.(list string) "receipt blobs" pkg.Package.pkg_receipts
    pkg'.Package.pkg_receipts;
  check digest_testable "root" pkg.Package.pkg_m_root pkg'.Package.pkg_m_root;
  check digest_testable "ledger rebuilds" pkg.Package.pkg_m_root
    (Ledger.m_root (Package.to_ledger pkg'));
  check digest_testable "genesis" (Genesis.hash genesis)
    (Genesis.hash (Package.genesis pkg'))

let test_package_rejects_corruption () =
  let enc = Package.serialize (sample_package ()) in
  let rejects what s =
    check Alcotest.bool what true
      (match Package.deserialize s with
      | (_ : Package.t) -> false
      | exception Package.Package_error _ -> true)
  in
  rejects "bad magic" ("XXXXXX\n" ^ String.sub enc 7 (String.length enc - 7));
  rejects "truncated" (String.sub enc 0 (String.length enc - 5));
  let flipped = Bytes.of_string enc in
  let off = String.length enc / 2 in
  Bytes.set flipped off (Char.chr (Char.code (Bytes.get flipped off) lxor 1));
  rejects "bit flip detected by checksum" (Bytes.to_string flipped);
  check Alcotest.bool "missing file" true
    (match Package.read_file "/nonexistent/iaccf.iapkg" with
    | (_ : Package.t) -> false
    | exception Package.Package_error _ -> true)

let test_package_file_roundtrip_from_store () =
  let dir = fresh_dir () in
  let s = open_cfg dir in
  fill s (sample_entries 9);
  let pkg =
    Package.of_entries ~receipts:[ "r1" ]
      (List.init (Store.length s) (Store.get s))
  in
  Store.close s;
  let file = Filename.concat dir "bundle.iapkg" in
  Package.write_file file pkg;
  let pkg' = Package.read_file file in
  check digest_testable "root preserved through file" pkg.Package.pkg_m_root
    pkg'.Package.pkg_m_root;
  check Alcotest.int "entries preserved" 10 (List.length pkg'.Package.pkg_entries);
  check Alcotest.bool "atomic write leaves no tmp file" false
    (Sys.file_exists (file ^ ".tmp"))

(* The acceptance scenario: an honest run leaves the client with receipts;
   every replica then colludes to rewrite history. The forged ledger plus
   the receipts travel through a package file, and a fully offline audit
   must still produce a uPoM blaming at least f+1 replicas. *)
let test_package_offline_audit () =
  let n = 4 in
  let seed = 11 in
  let cluster = Cluster.make ~seed ~n ~app:(Smallbank.app ()) () in
  let receipts = drive_smallbank cluster ~txs:6 ~seed in
  let genesis = Cluster.genesis cluster in
  let sks = List.init n (fun i -> (i, Cluster.replica_sk cluster i)) in
  let forge =
    Forge.create ~genesis ~sks ~app:(Smallbank.app ()) ~pipeline:2
      ~checkpoint_interval:1000
  in
  let csk, cpk = Schnorr.keypair_of_seed "other-client" in
  ignore
    (Forge.add_batch forge
       [
         Request.make ~sk:csk ~client_pk:cpk ~service:(Genesis.hash genesis)
           ~proc:"sb/create" ~args:"99,1,1" ();
       ]);
  let pkg =
    Package.of_ledger
      ~receipts:(List.map Receipt.serialize receipts)
      (Forge.ledger forge)
  in
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let file = Filename.concat dir "attack.iapkg" in
  Package.write_file file pkg;
  (* Offline: every audit input comes from the file. *)
  let pkg = Package.read_file file in
  let ledger = Package.to_ledger pkg in
  let receipts = List.map Receipt.deserialize pkg.Package.pkg_receipts in
  let params = Replica.default_params in
  let enforcer =
    Enforcer.create ~genesis:(Package.genesis pkg) ~app:(Smallbank.app ())
      ~pipeline:params.Replica.pipeline
      ~checkpoint_interval:params.Replica.checkpoint_interval
  in
  let outcome =
    Enforcer.investigate enforcer ~receipts ~gov_receipts:[]
      ~provider:(fun _ ->
        Some { Enforcer.resp_ledger = ledger; resp_checkpoint = pkg.Package.pkg_checkpoint })
  in
  match outcome with
  | Enforcer.Members_punished { punished; verdict } ->
      let blamed = Bitmap.to_list verdict.Audit.v_blamed_replicas in
      let f = Config.f (Package.genesis pkg).Genesis.initial_config in
      check Alcotest.bool
        (Printf.sprintf "blames at least f+1 replicas (got %d)"
           (List.length blamed))
        true
        (List.length blamed >= f + 1);
      check Alcotest.bool "members punished" true (punished <> [])
  | _ -> Alcotest.fail "expected Members_punished from the offline audit"

let () =
  Alcotest.run "iaccf_storage"
    [
      ( "store",
        [
          Alcotest.test_case "fresh append reopen" `Quick test_fresh_append_reopen;
          Alcotest.test_case "segment rolling" `Quick test_segment_rolling;
          Alcotest.test_case "torn tail truncated" `Quick test_torn_tail_truncated;
          Alcotest.test_case "interior corruption rejected" `Quick
            test_interior_corruption_rejected;
          Alcotest.test_case "durable prefix protected" `Quick
            test_durable_prefix_protected;
          Alcotest.test_case "truncate durable" `Quick test_truncate_durable;
          Alcotest.test_case "entry cache" `Quick test_entry_cache;
          Alcotest.test_case "attach divergence preserves store" `Quick
            test_attach_divergence_preserves_store;
          Alcotest.test_case "attach refuses rollback by default" `Quick
            test_attach_refuses_rollback_by_default;
          Alcotest.test_case "read-only open leaves evidence untouched" `Quick
            test_readonly_open_untouched;
        ] );
      ( "crash-matrix",
        [ Alcotest.test_case "kill after N appends" `Quick test_crash_matrix ] );
      ( "cluster-persistence",
        [
          Alcotest.test_case "smallbank persist + reopen" `Quick
            test_smallbank_persist_reopen;
          Alcotest.test_case "cold restart replays the store" `Quick
            test_cluster_cold_restart;
          Alcotest.test_case "restart drops a trailing partial batch" `Quick
            test_restart_drops_partial_batch;
          Alcotest.test_case "restart refuses deep damage" `Quick
            test_restart_refuses_deep_damage;
        ] );
      ( "package",
        [
          Alcotest.test_case "roundtrip" `Quick test_package_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick
            test_package_rejects_corruption;
          Alcotest.test_case "file roundtrip from store" `Quick
            test_package_file_roundtrip_from_store;
          Alcotest.test_case "offline audit of a rewrite attack" `Quick
            test_package_offline_audit;
        ] );
    ]
