(** Incremental CRC-framed message stream, reusing the storage frame
    layout ([u32 length | u32 CRC32 | payload], big-endian).

    Unlike the segment scanner, a stream decoder must distinguish "short
    read, wait for more bytes" from "corrupt": after a checksum mismatch
    or an implausible length the frame boundaries are unrecoverable and
    the connection must be dropped. *)

val header_bytes : int

val max_payload_bytes : int
(** 16 MiB: protocol messages, not bulk segments. *)

val encode : string -> string
(** Frame a payload for transmission (identical bytes to
    {!Iaccf_storage.Frame.encode}). *)

type t
(** Per-connection receive state. *)

val create : unit -> t

val feed : t -> string -> unit
(** Append bytes read off the socket. *)

val next : t -> [ `Frame of string | `Need_more | `Corrupt of string ]
(** Extract the next complete frame. After [`Corrupt] the decoder state
    is meaningless: close the connection. *)

val buffered : t -> int
(** Bytes currently buffered (diagnostics). *)
