test/test_merkle.mli:
