test/test_governance.ml: Alcotest Client Cluster Govchain Iaccf_core Iaccf_ledger Iaccf_types List Option Printf Replica Result String
