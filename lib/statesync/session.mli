(** One in-flight catch-up session on the fetching replica.

    Created when a peer's snapshot offer is accepted; collects snapshot
    chunks and the buffered ledger suffix, and tracks liveness so the
    replica's progress tick can re-request missing pieces or abandon a
    stalled peer. Verification (checkpoint digest, Merkle roots) is the
    replica's job at install time — the session is bookkeeping only. *)

type t

val create :
  peer:int -> cp_seqno:int -> total:int -> bytes:int -> upto:int ->
  view:int -> suffix_from:int -> now:float -> t
(** From an accepted [Snapshot_offer]: [total]/[bytes] dimension the chunk
    assembler, [upto]/[view] are the peer's advertised ledger length and
    view, [suffix_from] is our ledger length at session start.
    @raise Invalid_argument if [total < 1] or [bytes < 0]. *)

val peer : t -> int
val cp_seqno : t -> int
val suffix_from : t -> int

val suffix_end : t -> int
(** [suffix_from] plus the entries buffered so far. *)

val upto : t -> int
val view : t -> int

val started : t -> float
(** Session start time (registry clock), for the duration histogram. *)

val suffix : t -> Iaccf_ledger.Entry.t list
(** Buffered suffix entries, ledger order. *)

val on_chunk : t -> index:int -> string -> [ `Added | `Duplicate | `Invalid ]
(** Record one snapshot chunk. *)

val on_entries :
  t -> from:int -> Iaccf_ledger.Entry.t list -> upto:int -> view:int -> bool
(** Buffer a suffix extent. Accepted only when [from] equals
    {!suffix_end} and the extent is non-empty; gaps and replays return
    [false] and are simply re-requested. *)

val snapshot_complete : t -> bool
val assembled : t -> string option
val missing : t -> int list
val chunk_total : t -> int

val chunks_to_request : t -> window:int -> int list
(** Up to [window] never-yet-requested chunk indices, advancing the
    request cursor; [[]] once all have been requested at least once
    (retries then come from {!missing}). *)

val tick : t -> int
(** Liveness probe from the periodic tick: returns the number of
    consecutive ticks without progress (0 when progress was made). *)
