lib/types/message.mli: Batch Config Format Iaccf_crypto Iaccf_util
