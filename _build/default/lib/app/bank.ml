module Store = Iaccf_kv.Store
module App = Iaccf_core.App
module Schnorr = Iaccf_crypto.Schnorr
module Hex = Iaccf_util.Hex

let owner_hex pk = Hex.encode (Schnorr.public_key_to_bytes pk)
let account_key hex = "bank/" ^ hex

let balance_of tx hex =
  Option.bind (Store.get tx (account_key hex)) int_of_string_opt

let split2 args =
  match String.index_opt args ',' with
  | Some i ->
      Some
        ( String.sub args 0 i,
          String.sub args (i + 1) (String.length args - i - 1) )
  | None -> None

(* bank/open: args = initial balance; the account belongs to the caller. *)
let open_account (ctx : App.context) args =
  let me = owner_hex ctx.App.caller in
  match int_of_string_opt args with
  | Some initial when initial >= 0 -> (
      match Store.get ctx.App.tx (account_key me) with
      | Some _ -> Error "account already open"
      | None ->
          Store.put ctx.App.tx (account_key me) (string_of_int initial);
          Ok me)
  | _ -> Error "usage: initial-balance"

(* bank/deposit: args = "owner-hex,amount"; open to anyone. *)
let deposit (ctx : App.context) args =
  match split2 args with
  | Some (owner, amount_s) -> (
      match (balance_of ctx.App.tx owner, int_of_string_opt amount_s) with
      | Some balance, Some amount when amount > 0 ->
          Store.put ctx.App.tx (account_key owner) (string_of_int (balance + amount));
          Ok (string_of_int (balance + amount))
      | None, _ -> Error "no such account"
      | _, _ -> Error "bad amount")
  | None -> Error "usage: owner,amount"

(* bank/withdraw: args = amount; only from the caller's own account. *)
let withdraw (ctx : App.context) args =
  let me = owner_hex ctx.App.caller in
  match (balance_of ctx.App.tx me, int_of_string_opt args) with
  | Some balance, Some amount when amount > 0 ->
      if balance < amount then Error "insufficient funds"
      else begin
        Store.put ctx.App.tx (account_key me) (string_of_int (balance - amount));
        Ok (string_of_int (balance - amount))
      end
  | None, _ -> Error "caller has no account"
  | _, _ -> Error "bad amount"

(* bank/transfer: args = "dst-hex,amount"; source is the caller. *)
let transfer (ctx : App.context) args =
  let me = owner_hex ctx.App.caller in
  match split2 args with
  | Some (dst, amount_s) -> (
      if String.equal dst me then Error "cannot transfer to self"
      else begin
        match
          (balance_of ctx.App.tx me, balance_of ctx.App.tx dst, int_of_string_opt amount_s)
        with
        | Some src_bal, Some dst_bal, Some amount when amount > 0 ->
            if src_bal < amount then Error "insufficient funds"
            else begin
              Store.put ctx.App.tx (account_key me) (string_of_int (src_bal - amount));
              Store.put ctx.App.tx (account_key dst) (string_of_int (dst_bal + amount));
              Ok (string_of_int (src_bal - amount))
            end
        | None, _, _ -> Error "caller has no account"
        | _, None, _ -> Error "no such destination"
        | _, _, _ -> Error "bad amount"
      end)
  | None -> Error "usage: dst,amount"

(* bank/balance: args = owner-hex; public. *)
let balance (ctx : App.context) args =
  match balance_of ctx.App.tx args with
  | Some b -> Ok (string_of_int b)
  | None -> Error "no such account"

let procedures =
  [
    ("bank/open", open_account);
    ("bank/deposit", deposit);
    ("bank/withdraw", withdraw);
    ("bank/transfer", transfer);
    ("bank/balance", balance);
  ]

let app () = App.create procedures
