lib/kv/store.ml: Hamt Hashtbl Iaccf_crypto Iaccf_util List String
