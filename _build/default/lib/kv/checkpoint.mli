(** Key-value store checkpoints (§3.4).

    A checkpoint serializes the committed map at a sequence number; its
    digest [d_C] is recorded in a later checkpoint transaction so replicas,
    clients, and auditors agree on the state without exchanging it. Auditors
    load a checkpoint to replay a ledger fragment (Alg. 4, replayLedger). *)

type t = {
  seqno : int;  (** sequence number the checkpoint was taken at *)
  state : Hamt.t;
}

val make : seqno:int -> Hamt.t -> t

val digest : t -> Iaccf_crypto.Digest32.t
(** Canonical digest: the sorted-fold digest of [state] bound to [seqno]. *)

val serialize : t -> string
val deserialize : string -> t
(** @raise Iaccf_util.Codec.Decode_error on malformed input. *)

val genesis : t
(** The empty checkpoint at sequence number 0. *)
