(** Schnorr signatures over {!Group}.

    Replaces the paper's secp256k1 signatures: a keypair signs 32-byte
    digests and produces 64-byte signatures; verification performs two
    256-bit modular exponentiations, matching ECDSA's cost shape. Nonces are
    deterministic (HMAC over the secret key and digest, RFC 6979 style), so
    simulated runs are reproducible. *)

type secret_key
type public_key

val pp_public_key : Format.formatter -> public_key -> unit
val public_key_equal : public_key -> public_key -> bool

val keypair_of_seed : string -> secret_key * public_key
(** Derive a keypair deterministically from arbitrary seed bytes. *)

val public_key : secret_key -> public_key

val public_key_to_bytes : public_key -> string
(** 32 bytes. *)

val public_key_of_bytes : string -> public_key option

val precompute : public_key -> unit
(** Build the per-key fixed-base table (255 squarings, done once): later
    [verify] calls against this key skip the whole squaring chain,
    roughly 1.7x faster. Worth it for any key seen more than twice —
    replica keys, repeat clients. Idempotent; safe to race. *)

val has_table : public_key -> bool
(** Whether [precompute] has run for this key. *)

val sign : secret_key -> string -> string
(** [sign sk digest] signs a 32-byte [digest]; the result is 64 bytes.
    @raise Invalid_argument if [digest] is not 32 bytes. *)

val verify : public_key -> string -> signature:string -> bool
(** [verify pk digest ~signature] checks a 64-byte signature on a 32-byte
    digest; malformed inputs verify as [false]. *)

val signature_size : int
(** 64. *)
