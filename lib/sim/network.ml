module Rng = Iaccf_util.Rng
module Obs = Iaccf_obs.Obs

type 'msg t = {
  sched : Sched.t;
  latency : Latency.t;
  drop_rng : Rng.t option;
  obs : Obs.t;
  handlers : (int, src:int -> 'msg -> unit) Hashtbl.t;
  (* Outbound interception (Byzantine wrappers): rewrites a source's
     message stream at the network boundary, below the latency/drop model. *)
  intercepts : (int, dst:int -> 'msg -> (int * 'msg) list) Hashtbl.t;
  mutable drop_probability : float;
  (* Causal-flow classifier, injected by the layer that knows the message
     type (the sim layer cannot depend on the wire format): maps a message
     to a (flow name, flow id) pair, or None for untraced traffic. When
     set and tracing is on, every delivered message emits a Flow_start at
     the sender and a matching Flow_finish at the receiver, so request
     paths link across nodes in the Chrome trace. Dropped messages emit
     neither; a delivery to an unregistered handler finishes the flow
     with a cancelled marker — starts and finishes always pair up. *)
  mutable flow_of : ('msg -> (string * string) option) option;
  (* Socket-backend escape hatch: when set, a send whose destination has
     no local handler is handed to the gateway instead of entering the
     latency/drop model — the gateway serializes it onto a socket and a
     remote process's network [inject]s it there. Unset (every pure-sim
     run), the send path is byte-identical to before the hook existed:
     the branch tests only [None]. *)
  mutable gateway : (src:int -> dst:int -> 'msg -> unit) option;
  mutable chunk_bytes : int; (* per-message payload budget for state sync *)
  mutable cuts : (int * int) list; (* unordered pairs with severed links *)
  mutable oneway_cuts : (int * int) list; (* directed (src, dst) cuts *)
  (* Tallies live in the obs registry (instance-scoped); the accessors
     below read them back so callers see the same counts as before. *)
  c_sent : Obs.counter;
  c_delivered : Obs.counter;
  c_dropped_cut : Obs.counter; (* dropped on a severed (two-way) link *)
  c_dropped_cut_oneway : Obs.counter; (* dropped on a directed cut *)
  c_dropped_prob : Obs.counter; (* dropped by the loss probability *)
  c_dropped_unregistered : Obs.counter; (* arrived for an absent handler *)
  c_dropped_intercepted : Obs.counter; (* withheld by an outbound intercept *)
  c_gateway_out : Obs.counter; (* handed to the socket gateway *)
  c_gateway_in : Obs.counter; (* injected from the socket gateway *)
}

let create ~sched ~latency ?drop_rng ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.passive () in
  {
    sched;
    latency;
    drop_rng;
    obs;
    handlers = Hashtbl.create 16;
    intercepts = Hashtbl.create 4;
    drop_probability = 0.0;
    flow_of = None;
    gateway = None;
    chunk_bytes = 64 * 1024;
    cuts = [];
    oneway_cuts = [];
    c_sent = Obs.counter obs "net.sent";
    c_delivered = Obs.counter obs "net.delivered";
    c_dropped_cut = Obs.counter obs "net.dropped.cut";
    c_dropped_cut_oneway = Obs.counter obs "net.dropped.cut_oneway";
    c_dropped_prob = Obs.counter obs "net.dropped.prob";
    c_dropped_unregistered = Obs.counter obs "net.dropped.unregistered";
    c_dropped_intercepted = Obs.counter obs "net.dropped.intercepted";
    c_gateway_out = Obs.counter obs "net.gateway.out";
    c_gateway_in = Obs.counter obs "net.gateway.in";
  }

let set_flow_classifier t f = t.flow_of <- Some f

let register t id handler = Hashtbl.replace t.handlers id handler
let unregister t id = Hashtbl.remove t.handlers id
let set_intercept t src f = Hashtbl.replace t.intercepts src f
let clear_intercept t src = Hashtbl.remove t.intercepts src
let intercepted t src = Hashtbl.mem t.intercepts src

let cut t a b =
  List.exists (fun (x, y) -> (x = a && y = b) || (x = b && y = a)) t.cuts

let cut_oneway t ~src ~dst =
  List.exists (fun (x, y) -> x = src && y = dst) t.oneway_cuts

(* [None] = deliver; otherwise why the message is lost. Cuts are checked
   first (two-way, then directed): a severed link drops deterministically,
   before the loss draw. *)
let drop_reason t ~src ~dst =
  if cut t src dst then Some `Cut
  else if cut_oneway t ~src ~dst then Some `Cut_oneway
  else
    match t.drop_rng with
    | Some rng when t.drop_probability > 0.0 && Rng.float rng 1.0 < t.drop_probability
      ->
        Some `Prob
    | _ -> None

let trace_drop t ~src ~dst cause =
  Obs.instant t.obs ~node:src ~cat:"net" ~name:"net.drop"
    ~args:
      [ ("cause", cause); ("src", string_of_int src); ("dst", string_of_int dst) ]
    ()

let raw_send t ~src ~dst msg =
  Obs.incr t.c_sent;
  if Obs.tracing_enabled t.obs then
    Obs.instant t.obs ~node:src ~cat:"net" ~name:"net.send"
      ~args:[ ("dst", string_of_int dst) ]
      ();
  match t.gateway with
  | Some gw when not (Hashtbl.mem t.handlers dst) ->
      (* Remote destination: hand off before the latency/drop draw — the
         wall-clock backend measures real latency, it doesn't model one. *)
      Obs.incr t.c_gateway_out;
      gw ~src ~dst msg
  | _ -> (
      match drop_reason t ~src ~dst with
  | Some `Cut ->
      Obs.incr t.c_dropped_cut;
      trace_drop t ~src ~dst "cut"
  | Some `Cut_oneway ->
      Obs.incr t.c_dropped_cut_oneway;
      trace_drop t ~src ~dst "cut-oneway"
  | Some `Prob ->
      Obs.incr t.c_dropped_prob;
      trace_drop t ~src ~dst "prob"
  | None ->
      let flow =
        if Obs.tracing_enabled t.obs then
          match t.flow_of with Some classify -> classify msg | None -> None
        else None
      in
      (match flow with
      | Some (name, id) ->
          Obs.flow_start t.obs ~node:src ~cat:"flow" ~name ~id
            ~args:[ ("dst", string_of_int dst) ]
            ()
      | None -> ());
      let delay = Latency.sample t.latency ~src ~dst in
      ignore
        (Sched.schedule t.sched ~delay (fun () ->
             match Hashtbl.find_opt t.handlers dst with
             | None ->
                 Obs.incr t.c_dropped_unregistered;
                 trace_drop t ~src ~dst "unregistered";
                 (match flow with
                 | Some (name, id) ->
                     Obs.flow_finish t.obs ~node:dst ~cat:"flow" ~name ~id
                       ~args:[ ("cancelled", "true") ]
                       ()
                 | None -> ())
             | Some handler ->
                 Obs.incr t.c_delivered;
                 (match flow with
                 | Some (name, id) ->
                     (* Arrival precedes the handler's effects in the
                        trace, so the arrow lands before the work starts. *)
                     Obs.flow_finish t.obs ~node:dst ~cat:"flow" ~name ~id
                       ~args:[ ("src", string_of_int src) ]
                       ()
                 | None -> ());
                 handler ~src msg)))

let send t ~src ~dst msg =
  match Hashtbl.find_opt t.intercepts src with
  | None -> raw_send t ~src ~dst msg
  | Some f -> (
      match f ~dst msg with
      | [] ->
          (* Withheld: the suppressed message is still accounted, so the
             sent = delivered + dropped conservation holds under wrappers. *)
          Obs.incr t.c_sent;
          Obs.incr t.c_dropped_intercepted;
          trace_drop t ~src ~dst "intercepted"
      | outs -> List.iter (fun (dst', msg') -> raw_send t ~src ~dst:dst' msg') outs)

let broadcast t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let set_gateway t gw = t.gateway <- Some gw
let clear_gateway t = t.gateway <- None
let registered t id = Hashtbl.mem t.handlers id

(* Deliver a frame that arrived from another process. Scheduled rather
   than called directly so handler effects interleave with timers exactly
   like a local delivery would (the handler runs inside the event loop,
   never re-entrantly under a socket read). *)
let inject t ~src ~dst msg =
  Obs.incr t.c_gateway_in;
  ignore
    (Sched.schedule t.sched ~delay:0.0 (fun () ->
         match Hashtbl.find_opt t.handlers dst with
         | None ->
             Obs.incr t.c_dropped_unregistered;
             trace_drop t ~src ~dst "unregistered"
         | Some handler ->
             Obs.incr t.c_delivered;
             handler ~src msg))

let chunk_bytes t = t.chunk_bytes

let set_chunk_bytes t n =
  if n < 1 then invalid_arg "Network.set_chunk_bytes: must be positive";
  t.chunk_bytes <- n

let set_drop_probability t p =
  if p > 0.0 && t.drop_rng = None then
    invalid_arg "Network.set_drop_probability: no drop_rng supplied";
  t.drop_probability <- p

let partition t group1 group2 =
  List.iter (fun a -> List.iter (fun b -> t.cuts <- (a, b) :: t.cuts) group2) group1

let partition_oneway t srcs dsts =
  List.iter
    (fun a -> List.iter (fun b -> t.oneway_cuts <- (a, b) :: t.oneway_cuts) dsts)
    srcs

let heal_pair t a b =
  t.cuts <-
    List.filter (fun (x, y) -> not ((x = a && y = b) || (x = b && y = a))) t.cuts;
  t.oneway_cuts <-
    List.filter
      (fun (x, y) -> not ((x = a && y = b) || (x = b && y = a)))
      t.oneway_cuts

let heal t =
  t.cuts <- [];
  t.oneway_cuts <- []

let messages_sent t = Obs.value t.c_sent
let messages_delivered t = Obs.value t.c_delivered
let messages_dropped_cut t = Obs.value t.c_dropped_cut
let messages_dropped_cut_oneway t = Obs.value t.c_dropped_cut_oneway
let messages_dropped_prob t = Obs.value t.c_dropped_prob
let messages_dropped_unregistered t = Obs.value t.c_dropped_unregistered
let messages_dropped_intercepted t = Obs.value t.c_dropped_intercepted

let messages_dropped t =
  messages_dropped_cut t + messages_dropped_cut_oneway t + messages_dropped_prob t
  + messages_dropped_unregistered t + messages_dropped_intercepted t

let drop_rate t =
  if messages_sent t = 0 then 0.0
  else float_of_int (messages_dropped t) /. float_of_int (messages_sent t)
