(** 32-byte SHA-256 digests as first-class values. *)

type t = private string

val size : int
val of_string : string -> t
(** Hash arbitrary bytes into a digest. *)

val of_raw : string -> t
(** Adopt an existing 32-byte digest. @raise Invalid_argument otherwise. *)

val concat : t list -> t
(** Digest of the concatenation of raw digests. *)

val to_raw : t -> string
val to_hex : t -> string
val of_hex : string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints the first 8 hex characters, enough to identify values in traces. *)

val pp_full : Format.formatter -> t -> unit

val zero : t
(** The all-zero digest, used as a placeholder (e.g. genesis parent). *)
