module Rng = Iaccf_util.Rng

type shape =
  | Constant of float
  | Poisson of float
  | Onoff of {
      on_rate : float;
      off_rate : float;
      on_ms : float;
      off_ms : float;
    }
  | Diurnal of { base_rate : float; peak_rate : float; period_ms : float }

type t = {
  shape : shape;
  rng : Rng.t;
  (* Onoff phase machine: absolute virtual time the current sojourn ends.
     Starts "off" with an expired sojourn so the first query enters the
     on phase. *)
  mutable phase_on : bool;
  mutable phase_end : float;
}

let validate = function
  | Constant r | Poisson r ->
      if r <= 0.0 then invalid_arg "Arrival.create: rate must be positive"
  | Onoff { on_rate; off_rate; on_ms; off_ms } ->
      if on_rate <= 0.0 then invalid_arg "Arrival.create: on_rate must be positive";
      if off_rate < 0.0 then invalid_arg "Arrival.create: off_rate must be >= 0";
      if on_ms <= 0.0 || off_ms <= 0.0 then
        invalid_arg "Arrival.create: sojourn means must be positive"
  | Diurnal { base_rate; peak_rate; period_ms } ->
      if base_rate < 0.0 then invalid_arg "Arrival.create: base_rate must be >= 0";
      if peak_rate <= 0.0 || peak_rate < base_rate then
        invalid_arg "Arrival.create: need peak_rate >= base_rate > 0";
      if period_ms <= 0.0 then invalid_arg "Arrival.create: period must be positive"

let create ~rng shape =
  validate shape;
  { shape; rng; phase_on = false; phase_end = neg_infinity }

(* Inverse-CDF exponential draw. [Rng.float rng 1.0] is in [0,1), so
   [1 -. u] is in (0,1] and the log is finite. *)
let exp_ms rng ~mean_ms = -.mean_ms *. log (1.0 -. Rng.float rng 1.0)
let exp_gap_ms rng ~rate_per_s = exp_ms rng ~mean_ms:(1000.0 /. rate_per_s)

(* Next arrival at or after [start] for the on/off machine: consume
   sojourns until an exponential gap at the current phase's rate lands
   inside the phase. Guaranteed to terminate because on_rate > 0: every
   recursion either advances [start] to a later phase boundary or returns. *)
let rec onoff_next t ~on_rate ~off_rate ~on_ms ~off_ms start =
  if start >= t.phase_end then begin
    t.phase_on <- not t.phase_on;
    let mean_ms = if t.phase_on then on_ms else off_ms in
    t.phase_end <- start +. exp_ms t.rng ~mean_ms;
    onoff_next t ~on_rate ~off_rate ~on_ms ~off_ms start
  end
  else
    let rate = if t.phase_on then on_rate else off_rate in
    if rate <= 0.0 then
      onoff_next t ~on_rate ~off_rate ~on_ms ~off_ms t.phase_end
    else
      let cand = start +. exp_gap_ms t.rng ~rate_per_s:rate in
      if cand <= t.phase_end then cand
      else onoff_next t ~on_rate ~off_rate ~on_ms ~off_ms t.phase_end

(* Non-homogeneous Poisson by thinning: candidates at the envelope rate
   [peak], each kept with probability rate(t)/peak. *)
let diurnal_rate ~base_rate ~peak_rate ~period_ms at =
  let swing = (peak_rate -. base_rate) *. 0.5 in
  base_rate +. (swing *. (1.0 -. cos (2.0 *. Float.pi *. at /. period_ms)))

let rec diurnal_next t ~base_rate ~peak_rate ~period_ms start =
  let cand = start +. exp_gap_ms t.rng ~rate_per_s:peak_rate in
  let r = diurnal_rate ~base_rate ~peak_rate ~period_ms cand in
  if Rng.float t.rng 1.0 *. peak_rate < r then cand
  else diurnal_next t ~base_rate ~peak_rate ~period_ms cand

let next_gap_ms t ~now_ms =
  let at =
    match t.shape with
    | Constant rate -> now_ms +. (1000.0 /. rate)
    | Poisson rate -> now_ms +. exp_gap_ms t.rng ~rate_per_s:rate
    | Onoff { on_rate; off_rate; on_ms; off_ms } ->
        onoff_next t ~on_rate ~off_rate ~on_ms ~off_ms now_ms
    | Diurnal { base_rate; peak_rate; period_ms } ->
        diurnal_next t ~base_rate ~peak_rate ~period_ms now_ms
  in
  Float.max 0.0 (at -. now_ms)

let mean_rate = function
  | Constant r | Poisson r -> r
  | Onoff { on_rate; off_rate; on_ms; off_ms } ->
      ((on_rate *. on_ms) +. (off_rate *. off_ms)) /. (on_ms +. off_ms)
  | Diurnal { base_rate; peak_rate; _ } -> (base_rate +. peak_rate) /. 2.0
