module Genesis = Iaccf_types.Genesis
module Batch = Iaccf_types.Batch
module Request = Iaccf_types.Request
module Store = Iaccf_kv.Store

type violation =
  | Output_mismatch of {
      v_receipt : Receipt.t;
      v_expected : string;
      v_recorded : string;
    }
  | Duplicate_slot of { v_first : Receipt.t; v_second : Receipt.t }
  | Min_index_violation of { v_receipt : Receipt.t }

let position r =
  (Receipt.seqno r, Option.value (Receipt.index r) ~default:0)

let tx_of r =
  match r.Receipt.subject with
  | Receipt.Tx_subject { tx; _ } -> Some tx
  | Receipt.Batch_subject -> None

let check ~app ~genesis ~receipts =
  let tx_receipts = List.filter (fun r -> tx_of r <> None) receipts in
  let sorted =
    List.sort (fun a b -> compare (position a) (position b)) tx_receipts
  in
  (* Same slot must mean the same transaction. *)
  let rec dup_check = function
    | a :: (b :: _ as rest) ->
        if position a = position b && not (Receipt.equal a b) then
          Error (Duplicate_slot { v_first = a; v_second = b })
        else dup_check rest
    | _ -> Ok ()
  in
  match dup_check sorted with
  | Error _ as e -> e
  | Ok () -> (
      (* Minimum indices capture real-time dependencies (Thm. 2): a request
         created after a receipt for index i carries min_index > i, so
         executing below the minimum proves the ordering was violated. *)
      let rt_check =
        List.fold_left
          (fun acc r ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
                match tx_of r with
                | Some tx when tx.Batch.request.Request.min_index > tx.Batch.index ->
                    Error (Min_index_violation { v_receipt = r })
                | Some _ | None -> Ok ()))
          (Ok ()) sorted
      in
      match rt_check with
      | Error _ as e -> e
      | Ok () -> (
          (* Serial re-execution against a fresh store. *)
          let store = Store.create () in
          let config = genesis.Genesis.initial_config in
          let rec replay = function
            | [] -> Ok ()
            | r :: rest -> (
                match tx_of r with
                | None -> replay rest
                | Some tx ->
                    let req = tx.Batch.request in
                    let output, _ =
                      App.execute app ~config ~caller:req.Request.client_pk ~store
                        ~proc:req.Request.proc ~args:req.Request.args
                    in
                    if String.equal output tx.Batch.result.Batch.output then
                      replay rest
                    else
                      Error
                        (Output_mismatch
                           {
                             v_receipt = r;
                             v_expected = output;
                             v_recorded = tx.Batch.result.Batch.output;
                           }))
          in
          replay sorted))

let pp_violation ppf = function
  | Output_mismatch { v_expected; v_recorded; v_receipt } ->
      Format.fprintf ppf "output mismatch at index %s: serial execution gives %S, receipt says %S"
        (match Receipt.index v_receipt with Some i -> string_of_int i | None -> "?")
        v_expected v_recorded
  | Duplicate_slot _ -> Format.pp_print_string ppf "two receipts claim the same ledger slot"
  | Min_index_violation _ ->
      Format.pp_print_string ppf "executed below its minimum ledger index"
