module Vec = Iaccf_util.Vec

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_max : float }

module Histogram = struct
  (* Raw samples are kept exactly up to [h_cap] and reservoir-sampled
     beyond it (Vitter's algorithm R with a private deterministic
     generator), so a histogram's memory is bounded no matter how long
     the run: percentiles are exact below the cap and uniformly sampled
     estimates above it, while count/sum/mean/min/max and the fixed
     buckets stay exact forever. *)
  type h = {
    h_active : bool;
    h_cap : int; (* reservoir size: max raw samples retained *)
    h_bounds : float array; (* strictly increasing upper bounds *)
    h_counts : int array; (* per-bucket, one extra slot for +inf *)
    h_samples : float Vec.t;
    mutable h_count : int; (* exact observation count *)
    mutable h_sum : float;
    mutable h_min : float;
    mutable h_max : float;
    mutable h_rng : int64; (* splitmix64 state for the reservoir draws *)
    mutable h_sorted : float array option; (* cache, invalidated on observe *)
  }

  let default_buckets =
    [|
      0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0;
      500.0; 1000.0; 2000.0; 5000.0;
    |]

  let default_cap = 8192

  let create ?(buckets = default_buckets) ?(cap = default_cap) ?(active = true)
      () =
    Array.iteri
      (fun i b ->
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Histogram.create: buckets must be strictly increasing")
      buckets;
    if cap < 1 then invalid_arg "Histogram.create: cap must be positive";
    {
      h_active = active;
      h_cap = cap;
      h_bounds = buckets;
      h_counts = Array.make (Array.length buckets + 1) 0;
      h_samples = Vec.create ();
      h_count = 0;
      h_sum = 0.0;
      h_min = 0.0;
      h_max = 0.0;
      h_rng = 0x9e3779b97f4a7c15L;
      h_sorted = None;
    }

  (* splitmix64 step; deterministic, private to the histogram so the
     reservoir draws never perturb any other seeded randomness. *)
  let next_rand h bound =
    let z = Int64.add h.h_rng 0x9e3779b97f4a7c15L in
    h.h_rng <- z;
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.unsigned_rem z (Int64.of_int bound))

  let bucket_index h v =
    (* First bound >= v, else the +inf slot. *)
    let n = Array.length h.h_bounds in
    let rec go lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if v <= h.h_bounds.(mid) then go lo mid else go (mid + 1) hi
      end
    in
    go 0 n

  let observe h v =
    if h.h_active then begin
      let empty = h.h_count = 0 in
      h.h_count <- h.h_count + 1;
      if Vec.length h.h_samples < h.h_cap then Vec.push h.h_samples v
      else begin
        (* Algorithm R: the n-th sample replaces a reservoir slot with
           probability cap/n, keeping the retained set uniform. *)
        let j = next_rand h h.h_count in
        if j < h.h_cap then Vec.set h.h_samples j v
      end;
      h.h_counts.(bucket_index h v) <- h.h_counts.(bucket_index h v) + 1;
      h.h_sum <- h.h_sum +. v;
      if empty || v < h.h_min then h.h_min <- v;
      if empty || v > h.h_max then h.h_max <- v;
      h.h_sorted <- None
    end

  let count h = h.h_count
  let retained h = Vec.length h.h_samples
  let cap h = h.h_cap
  let sum h = h.h_sum
  let mean h = if count h = 0 then 0.0 else h.h_sum /. float_of_int (count h)
  let min_value h = h.h_min
  let max_value h = h.h_max

  let sorted h =
    match h.h_sorted with
    | Some a -> a
    | None ->
        let a = Array.of_list (Vec.to_list h.h_samples) in
        Array.sort Float.compare a;
        h.h_sorted <- Some a;
        a

  (* Nearest-rank: sample of rank ceil(p * n), 1-based; p<=0 -> minimum. *)
  let percentile h p =
    let a = sorted h in
    let n = Array.length a in
    if n = 0 then 0.0
    else begin
      let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      a.(rank - 1)
    end

  let percentile_of_list p xs =
    let h = create ~active:true () in
    List.iter (observe h) xs;
    percentile h p

  let buckets h =
    let n = Array.length h.h_bounds in
    let acc = ref 0 in
    Array.init (n + 1) (fun i ->
        acc := !acc + h.h_counts.(i);
        ((if i = n then infinity else h.h_bounds.(i)), !acc))
end

(* Flow_start / Flow_finish are Chrome flow events ("s"/"f"): an arrow
   from the sender's timeline to the receiver's, correlated by (cat, id).
   The network layer emits them per traced message so one request's
   causal path links across replicas in Perfetto. *)
type phase = Span_begin | Span_end | Instant | Flow_start | Flow_finish

type event = {
  ev_ts : float;
  ev_ph : phase;
  ev_cat : string;
  ev_name : string;
  ev_node : int;
  ev_id : string;
  ev_args : (string * string) list;
}

type t = {
  metrics : bool;
  tracing : bool;
  mutable clock : unit -> float;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, Histogram.h) Hashtbl.t;
  marks : (string, float) Hashtbl.t;
  trace : event Vec.t;
  node_names : (int, string) Hashtbl.t;
}

let create ?(metrics = true) ?(tracing = true) ?(clock = fun () -> 0.0) () =
  {
    metrics;
    tracing;
    clock;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    marks = Hashtbl.create 64;
    trace = Vec.create ();
    node_names = Hashtbl.create 8;
  }

let passive () = create ~metrics:false ~tracing:false ()
let metrics_enabled t = t.metrics
let tracing_enabled t = t.tracing
let set_clock t clock = t.clock <- clock
let now t = t.clock ()

(* ------------------------------------------------------------------ *)
(* Counters / gauges                                                   *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.counters name c;
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c_value | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0; g_max = 0.0 } in
      Hashtbl.replace t.gauges name g;
      g

let set_gauge g v =
  g.g_value <- v;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.g_value
let gauge_max g = g.g_max

let gauge_max_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.g_max | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Histograms / marks                                                  *)

let histogram t ?buckets ?cap name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.create ?buckets ?cap ~active:t.metrics () in
      Hashtbl.replace t.histograms name h;
      h

let mark t key =
  if t.metrics && not (Hashtbl.mem t.marks key) then
    Hashtbl.replace t.marks key (now t)

let mark_lookup t key = Hashtbl.find_opt t.marks key

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let emit t ph ~node ~cat ~name ~id ~args =
  Vec.push t.trace
    {
      ev_ts = now t;
      ev_ph = ph;
      ev_cat = cat;
      ev_name = name;
      ev_node = node;
      ev_id = id;
      ev_args = args;
    }

let span_begin t ~node ~cat ~name ~id ?(args = []) () =
  if t.tracing then emit t Span_begin ~node ~cat ~name ~id ~args

let span_end t ~node ~cat ~name ~id ?(args = []) () =
  if t.tracing then emit t Span_end ~node ~cat ~name ~id ~args

let instant t ~node ~cat ~name ?(id = "") ?(args = []) () =
  if t.tracing then emit t Instant ~node ~cat ~name ~id ~args

let flow_start t ~node ~cat ~name ~id ?(args = []) () =
  if t.tracing then emit t Flow_start ~node ~cat ~name ~id ~args

let flow_finish t ~node ~cat ~name ~id ?(args = []) () =
  if t.tracing then emit t Flow_finish ~node ~cat ~name ~id ~args

let set_node_name t node name = Hashtbl.replace t.node_names node name
let events t = Vec.to_list t.trace
let event_count t = Vec.length t.trace

(* ------------------------------------------------------------------ *)
(* Metrics snapshot                                                    *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let bound_str b = if b = infinity then "inf" else float_str b

let snapshot t =
  let lines = ref [] in
  let put k v = lines := (k, v) :: !lines in
  Hashtbl.iter (fun _ c -> put c.c_name (string_of_int c.c_value)) t.counters;
  Hashtbl.iter (fun _ g -> put g.g_name (float_str g.g_value)) t.gauges;
  Hashtbl.iter
    (fun name h ->
      put (name ^ ".count") (string_of_int (Histogram.count h));
      put (name ^ ".sum") (float_str (Histogram.sum h));
      put (name ^ ".mean") (float_str (Histogram.mean h));
      put (name ^ ".min") (float_str (Histogram.min_value h));
      put (name ^ ".max") (float_str (Histogram.max_value h));
      put (name ^ ".p50") (float_str (Histogram.percentile h 0.50));
      put (name ^ ".p90") (float_str (Histogram.percentile h 0.90));
      put (name ^ ".p99") (float_str (Histogram.percentile h 0.99));
      Array.iter
        (fun (bound, cum) ->
          put
            (Printf.sprintf "%s.bucket.le_%s" name (bound_str bound))
            (string_of_int cum))
        (Histogram.buckets h))
    t.histograms;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !lines

let snapshot_string t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf ' ';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    (snapshot t);
  Buffer.contents buf

let write_metrics t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (snapshot_string t))

let parse_snapshot s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> line <> "")
  |> List.map (fun line ->
         match String.index_opt line ' ' with
         | None -> failwith ("Obs.parse_snapshot: malformed line: " ^ line)
         | Some i ->
             let k = String.sub line 0 i in
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             if k = "" || v = "" || String.contains v ' ' then
               failwith ("Obs.parse_snapshot: malformed line: " ^ line)
             else (k, v))

(* ------------------------------------------------------------------ *)
(* Trace export                                                        *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_args args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         args)
  ^ "}"

(* Chrome trace_event phases: async begin/end ("b"/"e") correlate
   overlapping spans by (cat, id); instants are "i"; flow start/finish
   ("s"/"f") draw cross-process arrows, again correlated by (cat, id). *)
let chrome_ph = function
  | Span_begin -> "b"
  | Span_end -> "e"
  | Instant -> "i"
  | Flow_start -> "s"
  | Flow_finish -> "f"

let chrome_event e =
  let base =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":0"
      (json_escape e.ev_name) (json_escape e.ev_cat) (chrome_ph e.ev_ph)
      (e.ev_ts *. 1000.0) (* virtual ms -> trace microseconds *)
      e.ev_node
  in
  let id = if e.ev_id = "" then "" else Printf.sprintf ",\"id\":\"%s\"" (json_escape e.ev_id) in
  let scope =
    match e.ev_ph with
    | Instant -> ",\"s\":\"p\""
    (* Bind the arrow head to the enclosing slice's end, the convention
       Perfetto expects for terminating flow steps. *)
    | Flow_finish -> ",\"bp\":\"e\""
    | _ -> ""
  in
  let args = if e.ev_args = [] then "" else ",\"args\":" ^ json_args e.ev_args in
  base ^ id ^ scope ^ args ^ "}"

let write_trace_chrome t oc =
  output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit_line line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  let names =
    Hashtbl.fold (fun node name acc -> (node, name) :: acc) t.node_names []
    |> List.sort compare
  in
  List.iter
    (fun (node, name) ->
      emit_line
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           node (json_escape name)))
    names;
  Vec.iter (fun e -> emit_line (chrome_event e)) t.trace;
  output_string oc "\n]}\n"

let phase_name = function
  | Span_begin -> "begin"
  | Span_end -> "end"
  | Instant -> "instant"
  | Flow_start -> "flow-start"
  | Flow_finish -> "flow-finish"

let write_trace_jsonl t oc =
  Vec.iter
    (fun e ->
      output_string oc
        (Printf.sprintf
           "{\"ts\":%.3f,\"ph\":\"%s\",\"cat\":\"%s\",\"name\":\"%s\",\"node\":%d,\"id\":\"%s\",\"args\":%s}\n"
           e.ev_ts (phase_name e.ev_ph) (json_escape e.ev_cat)
           (json_escape e.ev_name) e.ev_node (json_escape e.ev_id)
           (json_args e.ev_args)))
    t.trace

let write_trace_file t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if Filename.check_suffix file ".jsonl" then write_trace_jsonl t oc
      else write_trace_chrome t oc)
