test/test_kv.mli:
