(* Reconfiguration tests (§5): referenda through gov/propose + gov/vote,
   end/start-of-configuration batches, replica addition and removal, the
   governance sub-ledger, and receipt verification across configurations. *)

open Iaccf_core
module Config = Iaccf_types.Config
module Genesis = Iaccf_types.Genesis
module Batch = Iaccf_types.Batch
module Message = Iaccf_types.Message
module Ledger = Iaccf_ledger.Ledger
module Entry = Iaccf_ledger.Entry

let check = Alcotest.check

let submit_gov cluster client proc args =
  let result = ref None in
  Client.submit client ~proc ~args
    ~on_complete:(fun oc -> result := Some oc)
    ();
  let ok = Cluster.run_until cluster (fun () -> !result <> None) in
  if not ok then begin
    let states =
      String.concat " "
        (List.map
           (fun r ->
             Printf.sprintf "[%d:act=%b v=%d s=%d lc=%d pend=%d]" (Replica.id r)
               (Replica.active r) (Replica.view r) (Replica.next_seqno r)
               (Replica.last_committed r) (Replica.pending_requests r))
           (Cluster.replicas cluster))
    in
    Alcotest.failf "tx %s(%s) timed out (in-flight %d, failed-verify %d) %s" proc
      args (Client.in_flight client) (Client.failed_verifications client) states
  end;
  Option.get !result

(* Run a full referendum installing [next]; returns the proposal outcome. *)
let pass_referendum cluster next =
  let members = Cluster.members cluster in
  let proposer = Cluster.add_member_client cluster (List.hd members) in
  let oc = submit_gov cluster proposer "gov/propose" (Config.serialize next) in
  let id =
    match oc.Client.oc_output with
    | Ok id -> id
    | Error e -> Alcotest.failf "propose failed: %s" e
  in
  let threshold = 3 in
  List.iteri
    (fun i m ->
      if i < threshold then begin
        let voter = Cluster.add_member_client cluster m in
        let oc = submit_gov cluster voter "gov/vote" id in
        match oc.Client.oc_output with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "vote %d failed: %s" i e
      end)
    members;
  id

let wait_config cluster ~config_no ~on =
  Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () ->
      List.for_all
        (fun id -> (Replica.config (Cluster.replica cluster id)).Config.config_no = config_no)
        on)

let test_remove_replica () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  (* Some pre-referendum traffic. *)
  ignore (submit_gov cluster client "counter/add" "5");
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~remove_replicas:[ 3 ] ~base () in
  ignore (pass_referendum cluster next);
  let ok = wait_config cluster ~config_no:1 ~on:[ 0; 1; 2 ] in
  check Alcotest.bool "survivors reach config 1" true ok;
  check Alcotest.int "N is now 3" 3
    (Config.n_replicas (Replica.config (Cluster.replica cluster 0)));
  (* Retired replica is no longer active. *)
  Cluster.run cluster ~ms:1000.0;
  check Alcotest.bool "replica 3 retired" false
    (Replica.active (Cluster.replica cluster 3));
  (* Service keeps working in the new configuration. *)
  let oc = submit_gov cluster client "counter/add" "7" in
  check Alcotest.(result string string) "post-reconfig tx" (Ok "12") oc.Client.oc_output

let test_add_replica () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_gov cluster client "counter/add" "1");
  (* Spawn the future replica now; it stays passive. *)
  let r4 = Cluster.spawn_replica cluster ~id:4 in
  check Alcotest.bool "not yet active" false (Replica.active r4);
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~add_replicas:[ 4 ] ~base () in
  ignore (pass_referendum cluster next);
  let ok = wait_config cluster ~config_no:1 ~on:[ 0; 1; 2; 3 ] in
  check Alcotest.bool "old replicas reach config 1" true ok;
  (* The new replica fetches the ledger and joins (§5.1). *)
  Replica.join r4 ~from:0;
  let caught_up =
    Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () ->
        Replica.active r4
        && Replica.last_committed r4 >= Replica.last_committed (Cluster.replica cluster 0) - 4)
  in
  (if not caught_up then begin
     let r0 = Cluster.replica cluster 0 in
     Alcotest.failf "join failed: r4 act=%b s=%d lc=%d cfg=%d v=%d | r0 s=%d lc=%d v=%d act=%b"
       (Replica.active r4) (Replica.next_seqno r4) (Replica.last_committed r4)
       (Replica.config r4).Config.config_no (Replica.view r4)
       (Replica.next_seqno r0) (Replica.last_committed r0) (Replica.view r0)
       (Replica.active r0)
   end);
  check Alcotest.bool "new replica joined" true caught_up;
  check Alcotest.int "new replica in config 1" 1
    (Replica.config r4).Config.config_no;
  (* And the service now needs 5-replica quorums; traffic still flows. *)
  let oc = submit_gov cluster client "counter/add" "2" in
  check Alcotest.(result string string) "post-add tx" (Ok "3") oc.Client.oc_output

let test_ledger_records_config_batches () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_gov cluster client "counter/add" "1");
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~remove_replicas:[ 3 ] ~base () in
  ignore (pass_referendum cluster next);
  ignore (wait_config cluster ~config_no:1 ~on:[ 0; 1; 2 ]);
  ignore (submit_gov cluster client "counter/add" "1");
  let p = (Cluster.params cluster).Replica.pipeline in
  let eoc = ref 0 and soc = ref 0 and cps = ref 0 in
  Ledger.iteri
    (fun _ e ->
      match e with
      | Entry.Pre_prepare pp -> (
          match pp.Message.kind with
          | Batch.End_of_config _ -> incr eoc
          | Batch.Start_of_config _ -> incr soc
          | Batch.Checkpoint _ -> incr cps
          | Batch.Regular -> ())
      | _ -> ())
    (Replica.ledger (Cluster.replica cluster 0));
  check Alcotest.int "2P end-of-config batches" (2 * p) !eoc;
  check Alcotest.int "P start-of-config batches" p !soc;
  check Alcotest.bool "config-start checkpoint recorded" true (!cps >= 1)

let test_gov_receipts_collected () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_gov cluster client "counter/add" "1");
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~remove_replicas:[ 3 ] ~base () in
  ignore (pass_referendum cluster next);
  ignore (wait_config cluster ~config_no:1 ~on:[ 0; 1; 2 ]);
  Cluster.run cluster ~ms:2000.0;
  let receipts = Replica.gov_receipts (Cluster.replica cluster 0) in
  (* propose + 3 votes + P-th end-of-config batch. *)
  check Alcotest.bool
    (Printf.sprintf "at least 5 governance receipts (got %d)" (List.length receipts))
    true
    (List.length receipts >= 5);
  (* The chain verifies from genesis and yields the new configuration. *)
  let chain =
    Govchain.create (Cluster.genesis cluster)
      ~pipeline:(Cluster.params cluster).Replica.pipeline
  in
  (match Govchain.sync_from chain receipts with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gov chain rejected: %s" e);
  check Alcotest.int "chain reaches config 1" 1
    (Govchain.latest_config chain).Config.config_no

let test_client_verifies_across_reconfig () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_gov cluster client "counter/add" "1");
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~remove_replicas:[ 3 ] ~base () in
  ignore (pass_referendum cluster next);
  ignore (wait_config cluster ~config_no:1 ~on:[ 0; 1; 2 ]);
  (* A *fresh* client (knowing only the genesis) submits after the change:
     verification requires fetching the governance sub-ledger (§5.2). *)
  let fresh = Cluster.add_client cluster () in
  let result = ref None in
  Client.submit fresh ~proc:"counter/add" ~args:"10"
    ~on_complete:(fun oc -> result := Some oc)
    ();
  let ok = Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () -> !result <> None) in
  check Alcotest.bool "fresh client completed" true ok;
  check Alcotest.int "its chain reached config 1" 1
    (Govchain.latest_config (Client.govchain fresh)).Config.config_no;
  check Alcotest.int "no failed verifications" 0 (Client.failed_verifications fresh)

let test_non_member_cannot_govern () =
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~remove_replicas:[ 3 ] ~base () in
  let oc = submit_gov cluster client "gov/propose" (Config.serialize next) in
  check Alcotest.bool "rejected" true (Result.is_error oc.Client.oc_output)

let test_vote_bookkeeping () =
  let cluster = Cluster.make ~n:4 () in
  let members = Cluster.members cluster in
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~remove_replicas:[ 3 ] ~base () in
  let m0 = Cluster.add_member_client cluster (List.nth members 0) in
  let m1 = Cluster.add_member_client cluster (List.nth members 1) in
  let oc = submit_gov cluster m0 "gov/propose" (Config.serialize next) in
  let id = Result.get_ok oc.Client.oc_output in
  (* Double vote rejected; double proposal votes counted once. *)
  let v1 = submit_gov cluster m1 "gov/vote" id in
  check Alcotest.(result string string) "first vote" (Ok "voted:1/3") v1.Client.oc_output;
  let v2 = submit_gov cluster m1 "gov/vote" id in
  check Alcotest.bool "double vote rejected" true (Result.is_error v2.Client.oc_output);
  let v3 = submit_gov cluster m1 "gov/vote" "no-such-proposal" in
  check Alcotest.bool "unknown proposal rejected" true (Result.is_error v3.Client.oc_output)


let test_remove_primary () =
  (* Removing the view-0 primary: the new configuration's primary mapping
     changes (ids are stable, so view 0 of config 1 maps to replica 1). *)
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_gov cluster client "counter/add" "3");
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let next = Cluster.make_next_config cluster ~remove_replicas:[ 0 ] ~base () in
  ignore (pass_referendum cluster next);
  let ok = wait_config cluster ~config_no:1 ~on:[ 1; 2; 3 ] in
  check Alcotest.bool "survivors reach config 1" true ok;
  Cluster.run cluster ~ms:2000.0;
  check Alcotest.bool "old primary retired" false
    (Replica.active (Cluster.replica cluster 0));
  (* Service continues under the new primary set. *)
  let oc = submit_gov cluster client "counter/add" "4" in
  check Alcotest.(result string string) "tx under new primaries" (Ok "7")
    oc.Client.oc_output

let test_two_reconfigurations () =
  (* 4 -> 5 (add replica 4) -> 4 (remove replica 1): the governance
     sub-ledger chains two configuration changes and a fresh client still
     verifies end-to-end. *)
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in
  ignore (submit_gov cluster client "counter/add" "1");
  let r4 = Cluster.spawn_replica cluster ~id:4 in
  let base = (Cluster.genesis cluster).Genesis.initial_config in
  let cfg1 = Cluster.make_next_config cluster ~add_replicas:[ 4 ] ~base () in
  ignore (pass_referendum cluster cfg1);
  let ok = wait_config cluster ~config_no:1 ~on:[ 0; 1; 2; 3 ] in
  check Alcotest.bool "config 1" true ok;
  Replica.join r4 ~from:0;
  let ok =
    Cluster.run_until cluster ~timeout_ms:120_000.0 (fun () -> Replica.active r4)
  in
  check Alcotest.bool "replica 4 joined" true ok;
  (* Second referendum on top of configuration 1. *)
  let cfg2 = Cluster.make_next_config cluster ~remove_replicas:[ 1 ] ~base:cfg1 () in
  ignore (pass_referendum cluster cfg2);
  let ok = wait_config cluster ~config_no:2 ~on:[ 0; 2; 3; 4 ] in
  check Alcotest.bool "config 2" true ok;
  Cluster.run cluster ~ms:2000.0;
  check Alcotest.bool "replica 1 retired" false
    (Replica.active (Cluster.replica cluster 1));
  (* Fresh client: must chain receipts across BOTH reconfigurations. *)
  let fresh = Cluster.add_client cluster () in
  let oc = submit_gov cluster fresh "counter/add" "10" in
  check Alcotest.bool "tx verified" true (Result.is_ok oc.Client.oc_output);
  check Alcotest.int "fresh chain reaches config 2" 2
    (Govchain.latest_config (Client.govchain fresh)).Config.config_no;
  check Alcotest.int "no failed verifications" 0 (Client.failed_verifications fresh)

let () =
  Alcotest.run "iaccf_governance"
    [
      ( "reconfiguration",
        [
          Alcotest.test_case "remove replica" `Quick test_remove_replica;
          Alcotest.test_case "add replica" `Quick test_add_replica;
          Alcotest.test_case "config batches in ledger" `Quick
            test_ledger_records_config_batches;
          Alcotest.test_case "remove primary" `Quick test_remove_primary;
          Alcotest.test_case "two reconfigurations" `Quick test_two_reconfigurations;
        ] );
      ( "governance sub-ledger",
        [
          Alcotest.test_case "receipts collected" `Quick test_gov_receipts_collected;
          Alcotest.test_case "client verifies across reconfig" `Quick
            test_client_verifies_across_reconfig;
        ] );
      ( "voting",
        [
          Alcotest.test_case "non-member rejected" `Quick test_non_member_cannot_govern;
          Alcotest.test_case "vote bookkeeping" `Quick test_vote_bookkeeping;
        ] );
    ]
