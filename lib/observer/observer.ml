module Sched = Iaccf_sim.Sched
module Network = Iaccf_sim.Network
module Schnorr = Iaccf_crypto.Schnorr
module D = Iaccf_crypto.Digest32
module Ledger = Iaccf_ledger.Ledger
module Entry = Iaccf_ledger.Entry
module Tree = Iaccf_merkle.Tree
module Hamt = Iaccf_kv.Hamt
module Kv = Iaccf_kv.Store
module Obs = Iaccf_obs.Obs
open Iaccf_core

(* Observer addresses sit far above both replica ids (< Bitmap.max_replicas
   = 64) and client addresses (Cluster.client_base = 100, counting up), so
   the three tiers never collide. *)
let default_base = 9000

type t = {
  addr : int;
  source : int;
  inner : Replica.t;
  network : Wire.t Network.t;
  obs : Obs.t;
  c_status : Obs.counter;
  c_reads : Obs.counter;
  c_reads_unindexed : Obs.counter;
  c_audit : Obs.counter;
  c_audit_refused : Obs.counter;
}

let address t = t.addr
let source t = t.source
let replica t = t.inner
let synced_upto t = Replica.last_committed t.inner
let stop_tailing t = Replica.stop t.inner

let serve_status t ~src ~view ~seqno =
  Obs.incr t.c_status;
  Network.send t.network ~src:t.addr ~dst:src
    (Wire.Status_info
       {
         si_view = view;
         si_seqno = seqno;
         si_status = Replica.tx_status t.inner ~view ~seqno;
         si_committed = Replica.stable_committed t.inner;
       })

let serve_read t ~src ~key ~nonce =
  Obs.incr t.c_reads;
  let value = Hamt.find key (Kv.map (Replica.store t.inner)) in
  let seqno, pos, write_set, receipt =
    match Replica.last_write t.inner key with
    | Some (seqno, pos) ->
        let write_set =
          Option.value
            (Replica.tx_write_set t.inner ~seqno ~tx_position:pos)
            ~default:[]
        in
        (seqno, pos, write_set, Replica.build_receipt t.inner ~seqno ~tx_position:(Some pos))
    | None ->
        (* Key never written by a locally executed transaction (unwritten,
           or last written before an installed snapshot's horizon): the
           value is served without evidence and the reader must treat it
           as unverified. *)
        if value <> None then Obs.incr t.c_reads_unindexed;
        (0, 0, [], None)
  in
  Network.send t.network ~src:t.addr ~dst:src
    (Wire.Read_answer
       {
         ra_key = key;
         ra_nonce = nonce;
         ra_value = value;
         ra_seqno = seqno;
         ra_tx_position = pos;
         ra_write_set = write_set;
         ra_receipt = receipt;
       })

let serve_audit t ~src ~index =
  let ledger = Replica.ledger t.inner in
  if index < 0 || index >= Ledger.length ledger then Obs.incr t.c_audit_refused
  else begin
    let entry = Ledger.get ledger index in
    if not (Entry.in_merkle_tree entry) then Obs.incr t.c_audit_refused
    else begin
      Obs.incr t.c_audit;
      (* The entry's leaf index in M is its rank among Merkle-bound
         entries; transaction entries are bound via the per-batch g_root
         instead and are refused above. *)
      let m_index = ref 0 in
      Ledger.iteri
        (fun i e -> if i < index && Entry.in_merkle_tree e then incr m_index)
        ledger;
      let tree = Ledger.m_tree_copy ledger in
      Network.send t.network ~src:t.addr ~dst:src
        (Wire.Audit_answer
           {
             au_index = index;
             au_leaf = Entry.leaf_digest entry;
             au_m_index = !m_index;
             au_m_size = Tree.size tree;
             au_path = Tree.path tree !m_index;
             au_root = Ledger.m_root ledger;
           })
    end
  end

(* The observer's front door: read-tier queries are answered here — from
   local state only, even when the inner replica has been stopped — and
   everything else (suffix chunks, snapshot transfer, pre-prepares it
   tails) is fed through the passive replica's normal dispatch. *)
let handle t ~src msg =
  match msg with
  | Wire.Status_query { sq_view; sq_seqno } ->
      serve_status t ~src ~view:sq_view ~seqno:sq_seqno
  | Wire.Read_query { rq_key; rq_nonce } ->
      serve_read t ~src ~key:rq_key ~nonce:rq_nonce
  | Wire.Audit_query { aq_index } -> serve_audit t ~src ~index:aq_index
  | msg -> Replica.dispatch t.inner ~src msg

let create ~addr ~source ~genesis ~app ~params ~sched ~network ~rng ?obs
    ?(snapshot = false) () =
  let obs = match obs with Some o -> o | None -> Obs.passive () in
  let sk, _ = Schnorr.keypair_of_seed (Printf.sprintf "observer-%d" addr) in
  (* The inner replica's id is not in any configuration, so it never
     activates: it cannot vote, sign prepares, or emit batches — it only
     tails the ledger via the state-sync protocol and replays it through
     the verified state-transfer path. [client_address] is [None] for
     every key so it never sends client replies either. *)
  let inner =
    Replica.create ~id:addr ~sk ~genesis ~app ~params ~sched ~network
      ~client_address:(fun _ -> None) ~rng ~obs ()
  in
  let c name = Obs.counter obs (Printf.sprintf "observer.%d.%s" addr name) in
  let t =
    {
      addr;
      source;
      inner;
      network;
      obs;
      c_status = c "status_served";
      c_reads = c "reads_served";
      c_reads_unindexed = c "reads_unindexed";
      c_audit = c "audit_paths_served";
      c_audit_refused = c "audit_refused";
    }
  in
  Obs.set_node_name obs addr (Printf.sprintf "observer-%d" addr);
  (* Take over the network address: Replica.create registered the inner
     replica's handler; re-registering replaces it with the front door. *)
  Network.register network addr (fun ~src msg -> handle t ~src msg);
  Replica.start inner;
  (* Continuous tailing: join sets the fetch target and sends the first
     Fetch_state; as a never-activated replica, the inner replica's
     progress tick keeps re-fetching from the target forever, pulling each
     new committed suffix as the source's ledger grows. *)
  if snapshot then Replica.join_snapshot inner ~from:source
  else Replica.join inner ~from:source;
  t

let spawn cluster ~addr ?(source = 0) ?(snapshot = false) () =
  create ~addr ~source ~genesis:(Cluster.genesis cluster)
    ~app:(Cluster.app cluster) ~params:(Cluster.params cluster)
    ~sched:(Cluster.sched cluster) ~network:(Cluster.network cluster)
    ~rng:(Cluster.fork_rng cluster) ~obs:(Cluster.obs cluster) ~snapshot ()
