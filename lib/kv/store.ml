module D = Iaccf_crypto.Digest32
module Codec = Iaccf_util.Codec

type t = {
  mutable current : Hamt.t;
  mutable version : int;
  mutable log : (int * Hamt.t) list; (* committed (version, pre-state), newest first *)
  mutable open_tx : bool;
}

type write = Put of string | Delete

type tx = {
  store : t;
  base : Hamt.t;
  mutable working : Hamt.t;
  mutable writes : (string * write) list; (* newest first, may repeat keys *)
  mutable live : bool;
}

let create () = { current = Hamt.empty; version = 0; log = []; open_tx = false }
let of_map m = { current = m; version = 0; log = []; open_tx = false }
let map t = t.current
let version t = t.version

let preload t m =
  if t.version <> 0 || t.open_tx then invalid_arg "Store.preload: already in use";
  t.current <- m

let begin_tx store =
  if store.open_tx then invalid_arg "Store.begin_tx: transaction already open";
  store.open_tx <- true;
  { store; base = store.current; working = store.current; writes = []; live = true }

let check_live tx = if not tx.live then invalid_arg "Store: transaction is closed"

let get tx k =
  check_live tx;
  Hamt.find k tx.working

let put tx k v =
  check_live tx;
  tx.working <- Hamt.add k v tx.working;
  tx.writes <- (k, Put v) :: tx.writes

let delete tx k =
  check_live tx;
  tx.working <- Hamt.remove k tx.working;
  tx.writes <- (k, Delete) :: tx.writes

let normalize_writes writes =
  (* Last write per key wins; canonical order by key. The raw list is
     newest-first, so the first occurrence of a key is its final write. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, w) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k w)
    writes;
  let entries = Hashtbl.fold (fun k w acc -> (k, w) :: acc) tbl [] in
  List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) entries

let write_set_hash writes =
  let entries = normalize_writes writes in
  let payload =
    Codec.encode (fun w ->
        Codec.W.list w
          (fun (k, wr) ->
            Codec.W.bytes w k;
            match wr with
            | Put v ->
                Codec.W.u8 w 1;
                Codec.W.bytes w v
            | Delete -> Codec.W.u8 w 0)
          entries)
  in
  D.of_string payload

let commit_with_writes tx =
  check_live tx;
  tx.live <- false;
  let store = tx.store in
  store.open_tx <- false;
  store.log <- (store.version, tx.base) :: store.log;
  store.current <- tx.working;
  store.version <- store.version + 1;
  let writes = normalize_writes tx.writes in
  (write_set_hash writes, writes)

let commit tx = fst (commit_with_writes tx)

let abort tx =
  check_live tx;
  tx.live <- false;
  tx.store.open_tx <- false

let reset_to t m =
  if t.open_tx then invalid_arg "Store.reset_to: transaction open";
  t.current <- m;
  t.version <- 0;
  t.log <- []

let rollback t target =
  if t.open_tx then invalid_arg "Store.rollback: transaction open";
  if target > t.version then invalid_arg "Store.rollback: version in the future";
  if target = t.version then ()
  else begin
    match List.find_opt (fun (v, _) -> v = target) t.log with
    | None -> invalid_arg "Store.rollback: version pruned"
    | Some (_, state) ->
        t.current <- state;
        t.version <- target;
        t.log <- List.filter (fun (v, _) -> v < target) t.log
  end

let prune_rollback_log t ~keep =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  t.log <- take keep t.log

let state_digest t =
  let ctx = Iaccf_crypto.Sha256.init () in
  Hamt.fold_sorted
    (fun k v () ->
      Iaccf_crypto.Sha256.feed ctx
        (Codec.encode (fun w ->
             Codec.W.bytes w k;
             Codec.W.bytes w v)))
    t.current ();
  D.of_raw (Iaccf_crypto.Sha256.finalize ctx)
