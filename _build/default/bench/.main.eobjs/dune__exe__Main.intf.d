bench/main.mli:
