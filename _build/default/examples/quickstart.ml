(* Quickstart: a 4-replica IA-CCF service executing counter transactions,
   returning receipts that the client verifies offline.

   Run with:  dune exec examples/quickstart.exe *)

open Iaccf_core

let () =
  (* A consortium of 4 members, each operating one replica. *)
  let cluster = Cluster.make ~n:4 () in
  let client = Cluster.add_client cluster () in

  (* Submit a few transactions; each completion carries a receipt. *)
  let receipts = ref [] in
  List.iter
    (fun delta ->
      Client.submit client ~proc:"counter/add" ~args:delta
        ~on_complete:(fun oc ->
          receipts := oc.Client.oc_receipt :: !receipts;
          Printf.printf "counter/add %s -> output %s at ledger index %d (latency %.2f ms)\n"
            delta
            (match oc.Client.oc_output with Ok v -> v | Error e -> "error: " ^ e)
            oc.Client.oc_index oc.Client.oc_latency_ms)
        ())
    [ "10"; "20"; "12" ];
  let ok = Cluster.run_until cluster (fun () -> List.length !receipts = 3) in
  assert ok;

  (* Receipts are universally verifiable: anyone holding the genesis can
     check them without talking to the service (Alg. 3). *)
  let genesis = Cluster.genesis cluster in
  let config = genesis.Iaccf_types.Genesis.initial_config in
  let service = Iaccf_types.Genesis.hash genesis in
  List.iter
    (fun r ->
      match Receipt.verify ~config ~service r with
      | Ok () ->
          Format.printf "verified: %a (%d bytes)@." Receipt.pp_receipt r
            (Receipt.size_bytes r)
      | Error e -> Format.printf "INVALID receipt: %s@." e)
    !receipts;

  (* The ledger binds everything: an auditor can replay it from genesis. *)
  let auditor =
    Audit.create ~genesis
      ~app:(App.create Cluster.counter_app_procs)
      ~pipeline:(Cluster.params cluster).Replica.pipeline
      ~checkpoint_interval:(Cluster.params cluster).Replica.checkpoint_interval
  in
  match
    Audit.audit auditor ~receipts:!receipts
      ~ledger:(Replica.ledger (Cluster.replica cluster 0))
      ~responder:0 ()
  with
  | Ok () -> print_endline "audit: ledger is consistent with all receipts"
  | Error v -> Format.printf "audit: %a@." Audit.pp_verdict v
