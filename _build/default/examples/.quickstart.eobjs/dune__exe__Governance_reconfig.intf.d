examples/governance_reconfig.mli:
