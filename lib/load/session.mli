(** Lightweight client sessions: millions of signing identities without
    millions of clients.

    A full {!Iaccf_core.Client} carries receipt state, retry timers, and a
    network registration; holding one per simulated user caps experiments
    at a few thousand identities. A session here is just an id: its
    keypair is derived on demand from [seed ^ "-session-" ^ id] (and kept
    in a bounded LRU so hot sessions skip re-derivation), and its only
    per-identity state is an integer nonce counter — the request
    [client_seqno]. A table of a million sessions is a one-million-entry
    int array plus a fixed-size key cache: well under a gigabyte.

    Replicas only ever see ordinary signed {!Iaccf_types.Request}s, so
    session traffic flows through the same signature-verification stage
    (and its retransmit cache) as full clients. *)

type t

val create :
  ?key_cache:int ->
  seed:string ->
  genesis:Iaccf_types.Genesis.t ->
  n:int ->
  unit ->
  t
(** [n] session identities named [0 .. n-1]; [key_cache] (default 4096)
    bounds the derived-keypair LRU. @raise Invalid_argument if [n <= 0]. *)

val n : t -> int

val public_key : t -> id:int -> Iaccf_crypto.Schnorr.public_key
(** Derives (or re-uses) the session's keypair. *)

val make_request :
  t ->
  id:int ->
  ?min_index:int ->
  proc:string ->
  args:string ->
  unit ->
  Iaccf_types.Request.t
(** Sign one request as session [id], incrementing its nonce counter (the
    [client_seqno]). Deterministic: the same table, ids, and payloads
    yield byte-identical requests. @raise Invalid_argument if [id] is out
    of range. *)

val nonce : t -> id:int -> int
(** Requests signed so far by this session. *)

val sessions_used : t -> int
(** Sessions that have signed at least one request. *)

val derived_keys : t -> int
(** Keypair derivations actually performed (cache misses) — the cost the
    LRU is there to bound. *)
