(** Transaction receipts (§3.3, Alg. 3).

    A receipt is a statement signed by [N-f] replicas that request [t]
    executed at ledger index [i] with result [o]: the signed pre-prepare,
    [N-f-1] prepare signatures with the nonces that open their commitments,
    and a Merkle path from the [<t,i,o>] leaf to the per-batch root bound
    inside the pre-prepare. Receipts for request-less special batches (the
    P-th end-of-configuration batch of the governance sub-ledger, §5.2)
    carry no transaction subject. *)

module Message = Iaccf_types.Message
module Batch = Iaccf_types.Batch
module D = Iaccf_crypto.Digest32

type subject =
  | Tx_subject of {
      tx : Batch.tx_entry;
      leaf_index : int;
      batch_size : int;
      path : D.t list;  (** S *)
    }
  | Batch_subject  (** the receipt vouches for the (empty) batch itself *)

type t = {
  pp : Message.pre_prepare;  (** carries sigma_p, M-bar, H(k_p), E_{s-P}, i_g, d_C *)
  prep_bitmap : Iaccf_util.Bitmap.t;  (** E_s: backups contributing below *)
  prepare_sigs : string list;  (** Sigma_s, ascending replica id *)
  nonces : string list;  (** K_s, same order: opens each prepare's commitment *)
  subject : subject;
}

val seqno : t -> int
val view : t -> int

val index : t -> int option
(** Ledger index [i] for transaction receipts. *)

val signers : t -> Iaccf_util.Bitmap.t
(** Primary plus prepare signers: the replicas this receipt binds. *)

val verify : config:Iaccf_types.Config.t -> service:D.t -> t -> (unit, string) result
(** Alg. 3: reconstruct the pre-prepare and prepare messages, check the
    primary's identity and signature, each prepare signature under the
    reconstructed payload (nonce commitments recomputed from the revealed
    nonces), quorum size, the Merkle path to [g_root], and — for transaction
    subjects — the client signature and service binding of the request. *)

val reconstruct_prepare : t -> replica:int -> nonce:string -> signature:string -> Message.prepare
(** The prepare message a verifier reconstructs for a contributing backup;
    exposed for auditors that compare receipts against ledgers. *)

val encode : Iaccf_util.Codec.W.t -> t -> unit
val decode : Iaccf_util.Codec.R.t -> t
val serialize : t -> string
val deserialize : string -> t
val size_bytes : t -> int
val equal : t -> t -> bool
val pp_receipt : Format.formatter -> t -> unit
