module Entry = Iaccf_ledger.Entry

(* One in-flight catch-up: (snapshot @ cp_seqno) arriving as chunks from
   [peer], plus the ledger suffix buffered from [suffix_from] onward. The
   session only collects and tracks liveness; digest/root verification at
   install time belongs to the replica, which also decides when the buffered
   suffix reaches far enough to seal the checkpoint. *)
type t = {
  peer : int;
  cp_seqno : int;
  asm : Chunk.asm;
  mutable next_chunk : int;  (* lowest chunk index never yet requested *)
  mutable upto : int;  (* peer-advertised safe ledger length *)
  mutable view : int;  (* highest view the peer reported *)
  suffix_from : int;  (* our ledger length when the session began *)
  mutable suffix_rev : Entry.t list;
  mutable suffix_end : int;  (* suffix_from + buffered entries *)
  mutable progress : int;  (* bumped on every accepted chunk / extent *)
  mutable marker : int;  (* [progress] at the last liveness tick *)
  mutable stalls : int;
  started : float;
}

let create ~peer ~cp_seqno ~total ~bytes ~upto ~view ~suffix_from ~now =
  {
    peer;
    cp_seqno;
    asm = Chunk.create ~total ~bytes;
    next_chunk = 0;
    upto;
    view;
    suffix_from;
    suffix_rev = [];
    suffix_end = suffix_from;
    progress = 0;
    marker = 0;
    stalls = 0;
    started = now;
  }

let peer t = t.peer
let cp_seqno t = t.cp_seqno
let suffix_from t = t.suffix_from
let suffix_end t = t.suffix_end
let upto t = t.upto
let view t = t.view
let started t = t.started
let suffix t = List.rev t.suffix_rev

let on_chunk t ~index data =
  let r = Chunk.add t.asm ~index data in
  (if r = `Added then t.progress <- t.progress + 1);
  r

(* Suffix chunks are only accepted when they extend the buffer exactly:
   anything else (gap, replay, other peer) is dropped and re-requested. *)
let on_entries t ~from entries ~upto ~view =
  if from <> t.suffix_end || entries = [] then false
  else begin
    List.iter (fun e -> t.suffix_rev <- e :: t.suffix_rev) entries;
    t.suffix_end <- t.suffix_end + List.length entries;
    if upto > t.upto then t.upto <- upto;
    if view > t.view then t.view <- view;
    t.progress <- t.progress + 1;
    true
  end

let snapshot_complete t = Chunk.complete t.asm
let assembled t = Chunk.assembled t.asm
let missing t = Chunk.missing t.asm
let chunk_total t = Chunk.total t.asm

(* Window of chunk indices to request next: the lowest [window] outstanding,
   preferring never-requested ones; advances [next_chunk]. *)
let chunks_to_request t ~window =
  if window < 1 || snapshot_complete t then []
  else begin
    let fresh = ref [] and n = ref 0 in
    let total = Chunk.total t.asm in
    while !n < window && t.next_chunk < total do
      fresh := t.next_chunk :: !fresh;
      t.next_chunk <- t.next_chunk + 1;
      incr n
    done;
    List.rev !fresh
  end

(* Liveness probe, called from the replica's periodic tick: returns the
   number of consecutive ticks with no progress. *)
let tick t =
  if t.progress <> t.marker then begin
    t.marker <- t.progress;
    t.stalls <- 0
  end
  else t.stalls <- t.stalls + 1;
  t.stalls
