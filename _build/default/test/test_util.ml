open Iaccf_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Hex --- *)

let test_hex_roundtrip () =
  let s = "\x00\x01\xfe\xff hello" in
  check Alcotest.string "roundtrip" s (Hex.decode (Hex.encode s));
  check Alcotest.string "known" "deadbeef" (Hex.encode "\xde\xad\xbe\xef")

let test_hex_upper () =
  check Alcotest.string "upper" "\xde\xad\xbe\xef" (Hex.decode "DEADBEEF")

let test_hex_errors () =
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: non-hex character")
    (fun () -> ignore (Hex.decode "zz"))

let test_is_hex () =
  check Alcotest.bool "valid" true (Hex.is_hex "00ffAA12");
  check Alcotest.bool "odd" false (Hex.is_hex "abc");
  check Alcotest.bool "bad" false (Hex.is_hex "zz")

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hex.decode (Hex.encode s) = s)

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 57" 57 (Vec.get v 57);
  check Alcotest.(option int) "last" (Some 99) (Vec.last v)

let test_vec_truncate () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 3;
  check Alcotest.(list int) "after truncate" [ 1; 2; 3 ] (Vec.to_list v);
  Vec.truncate v 10;
  check Alcotest.int "truncate beyond is noop" 3 (Vec.length v);
  Vec.push v 7;
  check Alcotest.(list int) "push after truncate" [ 1; 2; 3; 7 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds")
    (fun () -> Vec.set v 2 0)

let test_vec_sub_list () =
  let v = Vec.of_list [ 0; 1; 2; 3; 4 ] in
  check Alcotest.(list int) "middle" [ 1; 2; 3 ] (Vec.sub_list v 1 3);
  check Alcotest.(list int) "empty" [] (Vec.sub_list v 5 0)

let test_vec_copy_independent () =
  let v = Vec.of_list [ 1; 2 ] in
  let w = Vec.copy v in
  Vec.push v 3;
  check Alcotest.int "copy unaffected" 2 (Vec.length w)

let prop_vec_matches_list =
  QCheck.Test.make ~name:"vec mirrors list ops" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let v = Vec.of_list l in
      Vec.to_list v = l
      && Vec.length v = List.length l
      && Vec.fold_left (fun acc x -> acc + x) 0 v = List.fold_left ( + ) 0 l)

(* --- Codec --- *)

let test_codec_ints () =
  let s =
    Codec.encode (fun w ->
        Codec.W.u8 w 0xab;
        Codec.W.u16 w 0x1234;
        Codec.W.u32 w 0xdeadbeef;
        Codec.W.u64 w 0x1122334455667788)
  in
  Codec.decode s (fun r ->
      check Alcotest.int "u8" 0xab (Codec.R.u8 r);
      check Alcotest.int "u16" 0x1234 (Codec.R.u16 r);
      check Alcotest.int "u32" 0xdeadbeef (Codec.R.u32 r);
      check Alcotest.int "u64" 0x1122334455667788 (Codec.R.u64 r))

let test_codec_compound () =
  let s =
    Codec.encode (fun w ->
        Codec.W.bytes w "hello";
        Codec.W.list w (Codec.W.bytes w) [ "a"; "bc" ];
        Codec.W.option w (Codec.W.u8 w) (Some 7);
        Codec.W.option w (Codec.W.u8 w) None;
        Codec.W.bool w true)
  in
  Codec.decode s (fun r ->
      check Alcotest.string "bytes" "hello" (Codec.R.bytes r);
      check Alcotest.(list string) "list" [ "a"; "bc" ] (Codec.R.list r Codec.R.bytes);
      check Alcotest.(option int) "some" (Some 7) (Codec.R.option r Codec.R.u8);
      check Alcotest.(option int) "none" None (Codec.R.option r Codec.R.u8);
      check Alcotest.bool "bool" true (Codec.R.bool r))

let test_codec_trailing () =
  Alcotest.check_raises "trailing" (Codec.Decode_error "trailing bytes") (fun () ->
      Codec.decode "ab" (fun r -> ignore (Codec.R.u8 r)))

let test_codec_truncated () =
  Alcotest.check_raises "eof" (Codec.Decode_error "unexpected end of input")
    (fun () -> Codec.decode "a" (fun r -> ignore (Codec.R.u32 r)))

let test_codec_bad_list_length () =
  (* u32 count far larger than remaining input must not allocate. *)
  let s = Codec.encode (fun w -> Codec.W.u32 w 0x7fffffff) in
  Alcotest.check_raises "list" (Codec.Decode_error "list length exceeds input")
    (fun () -> Codec.decode s (fun r -> ignore (Codec.R.list r Codec.R.u8)))

let prop_codec_u64_roundtrip =
  QCheck.Test.make ~name:"u64 roundtrip" ~count:200
    QCheck.(map abs int)
    (fun x ->
      let s = Codec.encode (fun w -> Codec.W.u64 w x) in
      Codec.decode s Codec.R.u64 = x)

let prop_codec_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:200 QCheck.string (fun s ->
      let enc = Codec.encode (fun w -> Codec.W.bytes w s) in
      Codec.decode enc Codec.R.bytes = s)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  check Alcotest.(list int) "same seed, same stream" xs ys

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.fail "out of bounds"
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 5 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 5 (fun _ -> Rng.int b 1000000) in
  if xs = ys then Alcotest.fail "split streams should differ"

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let l = List.init 50 Fun.id in
  let s = Rng.shuffle rng l in
  check Alcotest.(list int) "same multiset" l (List.sort compare s)

(* --- Bitmap --- *)

let test_bitmap_basic () =
  let b = Bitmap.of_list [ 0; 3; 63 ] in
  check Alcotest.bool "mem 3" true (Bitmap.mem 3 b);
  check Alcotest.bool "mem 4" false (Bitmap.mem 4 b);
  check Alcotest.int "cardinal" 3 (Bitmap.cardinal b);
  check Alcotest.(list int) "to_list sorted" [ 0; 3; 63 ] (Bitmap.to_list b)

let test_bitmap_set_ops () =
  let a = Bitmap.of_list [ 1; 2; 3 ] and b = Bitmap.of_list [ 2; 3; 4 ] in
  check Alcotest.(list int) "inter" [ 2; 3 ] (Bitmap.to_list (Bitmap.inter a b));
  check Alcotest.(list int) "union" [ 1; 2; 3; 4 ] (Bitmap.to_list (Bitmap.union a b));
  check Alcotest.(list int) "remove" [ 1; 3 ] (Bitmap.to_list (Bitmap.remove 2 a))

let test_bitmap_encode () =
  let b = Bitmap.of_list [ 0; 8; 63 ] in
  let s = Bitmap.encode b in
  check Alcotest.int "8 bytes" 8 (String.length s);
  check Alcotest.bool "roundtrip" true (Bitmap.equal b (Bitmap.decode s))

let test_bitmap_range () =
  Alcotest.check_raises "oob" (Invalid_argument "Bitmap: replica id out of range")
    (fun () -> ignore (Bitmap.add 64 Bitmap.empty))

let prop_bitmap_roundtrip =
  QCheck.Test.make ~name:"bitmap of_list/to_list" ~count:200
    QCheck.(list (int_bound 63))
    (fun l ->
      let sorted = List.sort_uniq compare l in
      Bitmap.to_list (Bitmap.of_list l) = sorted)

let () =
  Alcotest.run "iaccf_util"
    [
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "uppercase" `Quick test_hex_upper;
          Alcotest.test_case "errors" `Quick test_hex_errors;
          Alcotest.test_case "is_hex" `Quick test_is_hex;
          qtest prop_hex_roundtrip;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "truncate" `Quick test_vec_truncate;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "sub_list" `Quick test_vec_sub_list;
          Alcotest.test_case "copy" `Quick test_vec_copy_independent;
          qtest prop_vec_matches_list;
        ] );
      ( "codec",
        [
          Alcotest.test_case "ints" `Quick test_codec_ints;
          Alcotest.test_case "compound" `Quick test_codec_compound;
          Alcotest.test_case "trailing" `Quick test_codec_trailing;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "hostile list length" `Quick test_codec_bad_list_length;
          qtest prop_codec_u64_roundtrip;
          qtest prop_codec_bytes_roundtrip;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
        ] );
      ( "bitmap",
        [
          Alcotest.test_case "basic" `Quick test_bitmap_basic;
          Alcotest.test_case "set ops" `Quick test_bitmap_set_ops;
          Alcotest.test_case "encode" `Quick test_bitmap_encode;
          Alcotest.test_case "range" `Quick test_bitmap_range;
          qtest prop_bitmap_roundtrip;
        ] );
    ]
