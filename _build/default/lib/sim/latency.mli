(** Link latency models for the three testbeds of §6.

    Latencies are one-way, in milliseconds, with seeded jitter. The WAN
    model places nodes round-robin across three regions with the paper's
    Azure geography (US East / US West 2 / US South Central). *)

type t

val dedicated_cluster : Iaccf_util.Rng.t -> t
(** 40 Gbps cluster: ~0.05 ms one-way. *)

val lan : Iaccf_util.Rng.t -> t
(** Azure LAN: ~0.25 ms one-way. *)

val wan : Iaccf_util.Rng.t -> t
(** Three Azure regions: ~30-35 ms one-way between regions, LAN within. *)

val constant : float -> t
(** Fixed one-way latency, no jitter (unit tests). *)

val sample : t -> src:int -> dst:int -> float
(** One-way delay for a message from node [src] to node [dst]. *)

val nominal_rtt : t -> src:int -> dst:int -> float
(** Jitter-free round-trip estimate (for latency model reporting). *)
