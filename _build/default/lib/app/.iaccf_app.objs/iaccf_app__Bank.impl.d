lib/app/bank.ml: Iaccf_core Iaccf_crypto Iaccf_kv Iaccf_util Option String
