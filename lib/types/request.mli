(** Client transaction requests (Alg. 1, line 1):
    [t = <request, a, c, H(gt), m_i>_sigma_c].

    [a] is the stored procedure name plus arguments, [c] the client's public
    key, [H(gt)] the service name, and [m_i] the minimum ledger index before
    which the request must not execute — clients set it above the largest
    index they have a receipt for, capturing real-time ordering dependencies
    (Appx. B, Theorem 2). [client_seqno] distinguishes retransmissions of
    semantically identical requests. *)

type t = {
  proc : string;
  args : string;
  client_pk : Iaccf_crypto.Schnorr.public_key;
  service : Iaccf_crypto.Digest32.t;  (** H(gt) *)
  min_index : int;  (** m_i *)
  client_seqno : int;
  signature : string;
}

val signing_payload :
  proc:string ->
  args:string ->
  client_pk:Iaccf_crypto.Schnorr.public_key ->
  service:Iaccf_crypto.Digest32.t ->
  min_index:int ->
  client_seqno:int ->
  Iaccf_crypto.Digest32.t

val make :
  sk:Iaccf_crypto.Schnorr.secret_key ->
  client_pk:Iaccf_crypto.Schnorr.public_key ->
  service:Iaccf_crypto.Digest32.t ->
  ?min_index:int ->
  ?client_seqno:int ->
  proc:string ->
  args:string ->
  unit ->
  t

val verify : t -> service:Iaccf_crypto.Digest32.t -> bool
(** Signature valid and addressed to this service. *)

val hash : t -> Iaccf_crypto.Digest32.t
(** Request digest, the handle used in pre-prepare batch lists [B]. *)

val trace_id : t -> string
(** Causal trace id: the first 12 hex chars of {!hash}. Content-derived, so
    every hop holding the request (client, primary, backups) recovers the
    same id with no wire-format change; used to correlate the client's e2e
    span, cross-replica flow events, and the receipt in a trace. *)

val encode : Iaccf_util.Codec.W.t -> t -> unit
val decode : Iaccf_util.Codec.R.t -> t
val serialize : t -> string
val deserialize : string -> t
val pp : Format.formatter -> t -> unit
