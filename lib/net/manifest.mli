(** Cluster manifest: the JSON file a fleet of [iaccf serve] processes
    shares. It pins the deterministic key seed (each process derives the
    identical genesis locally), the member count, the application name,
    the run directory, and every replica's listen address. *)

type replica_entry = { id : int; addr : Addr.t }

type t = {
  seed : int;
  n_members : int;
  app : string;  (** ["counter"] or ["smallbank"] *)
  dir : string;  (** run directory: sockets, logs, metrics snapshots *)
  replicas : replica_entry list;
}

val n : t -> int
val addr_of : t -> int -> Addr.t option

val local :
  ?tcp:bool ->
  ?base_port:int ->
  ?n_members:int ->
  ?app:string ->
  seed:int ->
  n:int ->
  dir:string ->
  unit ->
  t
(** A single-machine fleet: unix sockets under [dir] (default), or
    loopback TCP from [base_port]. *)

val save : t -> string -> unit
val load : string -> (t, string) result
