module Config = Iaccf_types.Config
module Genesis = Iaccf_types.Genesis
module Message = Iaccf_types.Message
module Batch = Iaccf_types.Batch
module Request = Iaccf_types.Request
module Ledger = Iaccf_ledger.Ledger
module Entry = Iaccf_ledger.Entry
module Checkpoint = Iaccf_kv.Checkpoint
module Store = Iaccf_kv.Store
module Hamt = Iaccf_kv.Hamt
module Tree = Iaccf_merkle.Tree
module Bitmap = Iaccf_util.Bitmap
module D = Iaccf_crypto.Digest32
module Parverify = Iaccf_crypto.Parverify

type upom =
  | Invalid_receipt of { ir_receipt : Receipt.t; ir_reason : string }
  | Tied_receipts of { tr_first : Receipt.t; tr_second : Receipt.t }
  | Governance_fork of { gf_first : Receipt.t; gf_second : Receipt.t }
  | Malformed_ledger of { ml_responder : int; ml_reason : string; ml_index : int }
  | Receipt_not_in_ledger of {
      rn_receipt : Receipt.t;
      rn_case : [ `Same_view | `Ledger_view_higher | `Receipt_view_higher ];
      rn_reason : string;
    }
  | Wrong_execution of { we_index : int; we_seqno : int; we_reason : string }

type verdict = {
  v_upom : upom;
  v_blamed_replicas : Bitmap.t;
  v_blamed_members : string list;
}

type t = {
  genesis : Genesis.t;
  service : D.t;
  app : App.t;
  pipeline : int;
  checkpoint_interval : int;
  mutable verify_domains : int;
  chain : Govchain.t;
}

let create ~genesis ~app ~pipeline ~checkpoint_interval =
  {
    genesis;
    service = Genesis.hash genesis;
    app;
    pipeline;
    checkpoint_interval;
    verify_domains = 0;
    chain = Govchain.create genesis ~pipeline;
  }

let set_verify_domains t d = t.verify_domains <- d

(* Client-signature results for a batch's transactions, in order. With a
   domain budget the Schnorr work is fanned out through the verify pool —
   this is the audit's bulk check, up to [max_batch] verifies per batch —
   and the structural service-binding check stays here. The sequential
   path is [Request.verify] itself, so results are identical either way. *)
let bulk_sig_results t txs =
  if t.verify_domains > 1 && List.length txs >= 4 then
    let jobs =
      List.map
        (fun (tx : Batch.tx_entry) ->
          let r = tx.Batch.request in
          let payload =
            Request.signing_payload ~proc:r.Request.proc ~args:r.Request.args
              ~client_pk:r.Request.client_pk ~service:r.Request.service
              ~min_index:r.Request.min_index ~client_seqno:r.Request.client_seqno
          in
          {
            Parverify.j_pk = r.Request.client_pk;
            j_digest = D.to_raw payload;
            j_signature = r.Request.signature;
          })
        txs
    in
    let schnorr_ok = Parverify.verify_batch_results ~domains:t.verify_domains jobs in
    List.map2
      (fun (tx : Batch.tx_entry) ok ->
        ok && D.equal tx.Batch.request.Request.service t.service)
      txs schnorr_ok
  else List.map (fun (tx : Batch.tx_entry) -> Request.verify tx.Batch.request ~service:t.service) txs

(* ------------------------------------------------------------------ *)
(* Verdict assembly                                                    *)

let members_of t ~seqno bitmap =
  let config = Govchain.config_for_seqno t.chain seqno in
  Bitmap.to_list bitmap
  |> List.filter_map (fun r -> Config.operator_of_replica config r)
  |> List.sort_uniq compare

let verdict t ~seqno upom bitmap =
  { v_upom = upom; v_blamed_replicas = bitmap; v_blamed_members = members_of t ~seqno bitmap }

(* ------------------------------------------------------------------ *)
(* Governance receipts (§5.2, Lemma 7)                                 *)

let add_gov_receipts t rs =
  let sorted =
    List.sort (fun a b -> compare (Receipt.seqno a) (Receipt.seqno b)) rs
  in
  let rec go = function
    | [] -> Ok ()
    | r :: rest -> (
        match Govchain.add_receipt t.chain r with
        | Ok () -> go rest
        | Error reason
          when reason = "governance fork: conflicting end-of-config receipts" -> (
            (* Find the receipt it conflicts with to blame the overlap. *)
            let prev =
              List.find_opt
                (fun r' ->
                  (not (Receipt.equal r r'))
                  && r'.Receipt.subject = Receipt.Batch_subject)
                (Govchain.receipts t.chain)
            in
            match prev with
            | Some r' ->
                let blamed = Bitmap.inter (Receipt.signers r) (Receipt.signers r') in
                Error
                  (verdict t ~seqno:(Receipt.seqno r)
                     (Governance_fork { gf_first = r'; gf_second = r })
                     blamed)
            | None ->
                Error
                  (verdict t ~seqno:(Receipt.seqno r)
                     (Invalid_receipt { ir_receipt = r; ir_reason = reason })
                     Bitmap.empty))
        | Error reason ->
            Error
              (verdict t ~seqno:(Receipt.seqno r)
                 (Invalid_receipt { ir_receipt = r; ir_reason = reason })
                 Bitmap.empty))
  in
  go sorted

(* ------------------------------------------------------------------ *)
(* Receipt set validation (Alg. 4, auditReceipts)                      *)

let audit_receipts t receipts =
  (* Individual validity under the configuration the chain determines. *)
  let rec validate = function
    | [] -> Ok ()
    | r :: rest -> (
        match Govchain.verify_receipt t.chain r with
        | Ok () -> validate rest
        | Error reason ->
            Error
              (verdict t ~seqno:(Receipt.seqno r)
                 (Invalid_receipt { ir_receipt = r; ir_reason = reason })
                 Bitmap.empty))
  in
  match validate receipts with
  | Error _ as e -> e
  | Ok () ->
      (* Tied receipts: same slot, same view, different pre-prepares means
         two quorums signed contradictory statements. *)
      let rec ties = function
        | [] -> Ok ()
        | r :: rest -> (
            let conflict =
              List.find_opt
                (fun r' ->
                  Receipt.seqno r = Receipt.seqno r'
                  && Receipt.view r = Receipt.view r'
                  && not
                       (D.equal
                          (Message.pp_hash r.Receipt.pp)
                          (Message.pp_hash r'.Receipt.pp)))
                rest
            in
            match conflict with
            | Some r' ->
                let blamed = Bitmap.inter (Receipt.signers r) (Receipt.signers r') in
                Error
                  (verdict t ~seqno:(Receipt.seqno r)
                     (Tied_receipts { tr_first = r; tr_second = r' })
                     blamed)
            | None -> ties rest)
      in
      ties receipts

(* ------------------------------------------------------------------ *)
(* Ledger scan: well-formedness (Appx. B.1)                            *)

type batch_info = {
  bi_pp : Message.pre_prepare;
  bi_pp_index : int;
  bi_txs : Batch.tx_entry list;
}

type scan = {
  sc_batches : (int, batch_info) Hashtbl.t; (* seqno -> effective batch *)
  sc_evidence : (int, Bitmap.t) Hashtbl.t; (* seqno -> evidence contributors *)
  sc_vc_sets : (int * Message.view_change list) list; (* ascending ledger order *)
  sc_max_seqno : int;
}

exception Malformed of int * string

let scan_ledger t ~responder ledger =
  let tree = Tree.create () in
  let batches : (int, batch_info) Hashtbl.t = Hashtbl.create 64 in
  let evidence = Hashtbl.create 64 in
  let vc_sets = ref [] in
  let cfg = ref t.genesis.Genesis.initial_config in
  let cfg_pending = ref None in (* (activation_seqno, config) *)
  let gov_index = ref 0 in
  let next_seqno = ref 1 in
  let max_seqno = ref 0 in
  let last_tx_index = ref 0 in
  (* Pending pieces of the current batch being scanned. *)
  let pending_pe = ref None in
  let pending_ne = ref None in
  let open_batch = ref None in (* (pp, ledger index, txs rev) *)
  let fail i reason = raise (Malformed (i, reason)) in
  let config_at s =
    match !cfg_pending with
    | Some (activation, c) when s > activation -> c
    | _ -> !cfg
  in
  let maybe_activate s =
    match !cfg_pending with
    | Some (activation, c) when s >= activation ->
        cfg := c;
        cfg_pending := None
    | _ -> ()
  in
  let close_batch i =
    match !open_batch with
    | None -> ()
    | Some (pp, pp_index, txs_rev) ->
        let txs = List.rev txs_rev in
        let s = pp.Message.seqno in
        if not (D.equal (Batch.g_root txs) pp.Message.g_root) then
          fail i (Printf.sprintf "batch %d: transactions do not match g_root" s);
        let sig_results = bulk_sig_results t txs in
        List.iter2
          (fun (tx : Batch.tx_entry) sig_ok ->
            if tx.Batch.request.Request.min_index > tx.Batch.index then
              fail i (Printf.sprintf "batch %d: minimum index violated" s);
            if not sig_ok then
              fail i (Printf.sprintf "batch %d: invalid client signature" s);
            if
              String.length tx.Batch.request.Request.proc >= 4
              && String.sub tx.Batch.request.Request.proc 0 4 = "gov/"
            then gov_index := tx.Batch.index)
          txs sig_results;
        Hashtbl.replace batches s { bi_pp = pp; bi_pp_index = pp_index; bi_txs = txs };
        max_seqno := max !max_seqno s;
        (* A vote that passes schedules the configuration change 2P later.
           The recorded output is structural here; replay re-checks it. *)
        List.iter
          (fun (tx : Batch.tx_entry) ->
            if
              tx.Batch.request.Request.proc = "gov/vote"
              && App.decode_output tx.Batch.result.Batch.output = Ok "passed"
            then cfg_pending := None (* replaced below *))
          txs;
        List.iter
          (fun (tx : Batch.tx_entry) ->
            if
              tx.Batch.request.Request.proc = "gov/vote"
              && App.decode_output tx.Batch.result.Batch.output = Ok "passed"
            then begin
              (* The installed configuration is found in the proposal args of
                 an earlier gov/propose transaction; scan back for it. *)
              let proposal_id =
                match App.decode_output tx.Batch.result.Batch.output with
                | Ok _ -> tx.Batch.request.Request.args
                | Error _ -> ""
              in
              let found = ref None in
              Hashtbl.iter
                (fun _ bi ->
                  List.iter
                    (fun (tx' : Batch.tx_entry) ->
                      if
                        tx'.Batch.request.Request.proc = "gov/propose"
                        && D.to_hex (D.of_string tx'.Batch.request.Request.args)
                           = proposal_id
                      then begin
                        match Config.deserialize tx'.Batch.request.Request.args with
                        | exception _ -> ()
                        | c -> found := Some c
                      end)
                    bi.bi_txs)
                batches;
              (* Include the current batch too (propose+vote same batch). *)
              List.iter
                (fun (tx' : Batch.tx_entry) ->
                  if
                    tx'.Batch.request.Request.proc = "gov/propose"
                    && D.to_hex (D.of_string tx'.Batch.request.Request.args)
                       = proposal_id
                  then begin
                    match Config.deserialize tx'.Batch.request.Request.args with
                    | exception _ -> ()
                    | c -> found := Some c
                  end)
                txs;
              match !found with
              | Some c -> cfg_pending := Some (s + (2 * t.pipeline), c)
              | None -> fail i "passed vote without a visible proposal"
            end)
          txs;
        open_batch := None
  in
  let scan_entry i entry =
    (match entry with
    | Entry.Tx _ -> ()
    | _ -> close_batch i);
    (match entry with
    | Entry.Genesis g ->
        if i <> 0 then fail i "genesis entry not at index 0";
        if not (D.equal (Genesis.hash g) t.service) then fail i "wrong service genesis"
    | Entry.Tx tx -> (
        match !open_batch with
        | None -> fail i "transaction entry outside a batch"
        | Some (pp, pp_index, txs_rev) ->
            (* Indices are logical: strictly increasing, consecutive within a
               batch, never ahead of the physical position (a batch
               re-proposed after a view change keeps its original, lower
               indices; see Alg. 2). *)
            if tx.Batch.index > i then fail i "transaction index ahead of position";
            if tx.Batch.index <= !last_tx_index then
              fail i "transaction index not increasing";
            (match txs_rev with
            | prev :: _ when tx.Batch.index <> prev.Batch.index + 1 ->
                fail i "non-consecutive indices within a batch"
            | _ -> ());
            last_tx_index := tx.Batch.index;
            open_batch := Some (pp, pp_index, tx :: txs_rev))
    | Entry.Prepare_evidence { pe_view; pe_seqno; pe_prepares } -> (
        if !pending_pe <> None then fail i "dangling prepare evidence";
        (* A fresh pair may follow a tail pair that no pre-prepare will
           consume (the package's message box, Appx. B.1). *)
        pending_ne := None;
        match Hashtbl.find_opt batches pe_seqno with
        | None -> fail i "evidence for an unknown batch"
        | Some bi ->
            if bi.bi_pp.Message.view <> pe_view then
              fail i "evidence view does not match batch";
            let pph = Message.pp_hash bi.bi_pp in
            let config = config_at pe_seqno in
            let seen = Hashtbl.create 8 in
            List.iter
              (fun (p : Message.prepare) ->
                if p.Message.p_seqno <> pe_seqno || p.Message.p_view <> pe_view then
                  fail i "prepare evidence for wrong slot";
                if not (D.equal p.Message.p_pp_hash pph) then
                  fail i "prepare evidence does not match pre-prepare";
                if p.Message.p_replica = bi.bi_pp.Message.primary then
                  fail i "primary listed in prepare evidence";
                if Hashtbl.mem seen p.Message.p_replica then
                  fail i "duplicate prepare evidence";
                Hashtbl.add seen p.Message.p_replica ();
                if not (Message.verify_prepare config p) then
                  fail i "invalid prepare evidence signature")
              pe_prepares;
            if List.length pe_prepares <> Config.quorum config - 1 then
              fail i "prepare evidence quorum size wrong";
            pending_pe := Some (pe_seqno, pe_view, pe_prepares))
    | Entry.Nonce_evidence { ne_view; ne_seqno; ne_nonces } -> (
        match !pending_pe with
        | Some (s, v, prepares) when s = ne_seqno && v = ne_view -> (
            match Hashtbl.find_opt batches ne_seqno with
            | None -> fail i "nonce evidence for an unknown batch"
            | Some bi ->
                let config = config_at ne_seqno in
                List.iter
                  (fun (r, nonce) ->
                    let commitment =
                      if r = bi.bi_pp.Message.primary then
                        Some bi.bi_pp.Message.nonce_com
                      else begin
                        match
                          List.find_opt
                            (fun (p : Message.prepare) -> p.Message.p_replica = r)
                            prepares
                        with
                        | Some p -> Some p.Message.p_nonce_com
                        | None -> None
                      end
                    in
                    match commitment with
                    | Some c when D.equal (D.of_string nonce) c -> ()
                    | Some _ -> fail i "nonce does not open its commitment"
                    | None -> fail i "nonce from a replica without a prepare")
                  ne_nonces;
                if List.length ne_nonces <> Config.quorum config then
                  fail i "nonce evidence quorum size wrong";
                let bitmap = Bitmap.of_list (List.map fst ne_nonces) in
                Hashtbl.replace evidence ne_seqno bitmap;
                pending_ne := Some (ne_seqno, bitmap);
                pending_pe := None)
        | _ -> fail i "nonce evidence without matching prepare evidence")
    | Entry.Pre_prepare pp ->
        let s = pp.Message.seqno in
        maybe_activate s;
        let config = config_at s in
        if s <> !next_seqno then
          fail i (Printf.sprintf "unexpected sequence number %d (expected %d)" s !next_seqno);
        if not (Message.verify_pre_prepare config pp) then
          fail i "invalid pre-prepare signature";
        if not (D.equal pp.Message.m_root (Tree.root tree)) then
          fail i "pre-prepare m_root does not bind the ledger prefix";
        if pp.Message.gov_index <> !gov_index then
          fail i "pre-prepare gov_index incorrect";
        (match (!pending_ne, s - t.pipeline) with
        | Some (es, bitmap), expected ->
            if es <> expected then fail i "evidence for the wrong batch";
            if not (Bitmap.equal bitmap pp.Message.ev_bitmap) then
              fail i "ev_bitmap does not match evidence";
            pending_ne := None
        | None, expected ->
            if expected >= 1 then fail i "missing commitment evidence"
            else if not (Bitmap.equal pp.Message.ev_bitmap Bitmap.empty) then
              fail i "unexpected evidence bitmap");
        open_batch := Some (pp, i, []);
        next_seqno := s + 1
    | Entry.View_change_set vcs ->
        if vcs = [] then fail i "empty view-change set";
        let v = (List.hd vcs).Message.vc_view in
        let config = config_at !next_seqno in
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (vc : Message.view_change) ->
            if vc.Message.vc_view <> v then fail i "mixed views in view-change set";
            if Hashtbl.mem seen vc.Message.vc_replica then
              fail i "duplicate view-change sender";
            Hashtbl.add seen vc.Message.vc_replica ();
            if not (Message.verify_view_change config vc) then
              fail i "invalid view-change signature")
          vcs;
        if List.length vcs < Config.quorum config then
          fail i "view-change set below quorum";
        vc_sets := (v, vcs) :: !vc_sets;
        (* The new primary resumes P batches before the last prepared. *)
        let s_lp =
          List.fold_left
            (fun acc (vc : Message.view_change) ->
              List.fold_left
                (fun acc (pp : Message.pre_prepare) -> max acc pp.Message.seqno)
                acc vc.Message.vc_last_prepared)
            0 vcs
        in
        next_seqno := max 1 (s_lp - t.pipeline + 1)
    | Entry.New_view nv ->
        let config = config_at !next_seqno in
        if not (Message.verify_new_view config nv) then
          fail i "invalid new-view signature";
        (match !vc_sets with
        | (v, vcs) :: _ ->
            if v <> nv.Message.nv_view then fail i "new-view for wrong view";
            let entry_digest = Entry.leaf_digest (Entry.View_change_set vcs) in
            if not (D.equal entry_digest nv.Message.nv_vc_hash) then
              fail i "new-view vc hash mismatch"
        | [] -> fail i "new-view without view changes");
        if not (D.equal nv.Message.nv_m_root (Tree.root tree)) then
          fail i "new-view m_root mismatch");
    if Entry.in_merkle_tree entry then Tree.append tree (Entry.leaf_digest entry)
  in
  match
    Ledger.iteri (fun i e -> scan_entry i e) ledger;
    close_batch (Ledger.length ledger)
  with
  | () ->
      Ok
        {
          sc_batches = batches;
          sc_evidence = evidence;
          sc_vc_sets = List.rev !vc_sets;
          sc_max_seqno = !max_seqno;
        }
  | exception Malformed (i, reason) ->
      Error
        (verdict t ~seqno:1
           (Malformed_ledger { ml_responder = responder; ml_reason = reason; ml_index = i })
           Bitmap.empty)


(* ------------------------------------------------------------------ *)
(* Receipts vs ledger (Lemma 5)                                        *)

let batch_signers scan s =
  match (Hashtbl.find_opt scan.sc_evidence s, Hashtbl.find_opt scan.sc_batches s) with
  | Some bitmap, Some bi -> Some (Bitmap.add bi.bi_pp.Message.primary bitmap)
  | None, Some _ | _, None -> None

(* A receipt matches a ledger batch when the batch *content* agrees: after
   an honest view change the batch is re-proposed under a higher view with
   the same per-batch Merkle root and results (Alg. 2), so receipts from the
   old view remain truthful. *)
let receipt_compatible (r : Receipt.t) (bi : batch_info) =
  D.equal r.Receipt.pp.Message.g_root bi.bi_pp.Message.g_root
  && Batch.kind_equal r.Receipt.pp.Message.kind bi.bi_pp.Message.kind
  &&
  match r.Receipt.subject with
  | Receipt.Batch_subject -> true
  | Receipt.Tx_subject { tx; _ } ->
      List.exists
        (fun (tx' : Batch.tx_entry) ->
          String.equal (Batch.serialize_tx_entry tx') (Batch.serialize_tx_entry tx))
        bi.bi_txs

(* A view-change quorum for view v whose messages do not report the
   receipt's pre-prepare as prepared contradicts the receipt. *)
let find_contradicting_vc_set scan ~lo ~hi (r : Receipt.t) =
  let pph = Message.pp_hash r.Receipt.pp in
  List.find_opt
    (fun (v, vcs) ->
      v > lo && v <= hi
      && not
           (List.exists
              (fun (vc : Message.view_change) ->
                List.exists
                  (fun pp -> D.equal (Message.pp_hash pp) pph)
                  vc.Message.vc_last_prepared)
              vcs))
    scan.sc_vc_sets

let verify_receipts_in_ledger t ~responder scan receipts =
  let rec go = function
    | [] -> Ok ()
    | r :: rest -> (
        let s = Receipt.seqno r in
        match Hashtbl.find_opt scan.sc_batches s with
        | None -> (
            (* Ledger too short for the receipt: a view change must have
               buried it; otherwise the responder withheld data. *)
            match find_contradicting_vc_set scan ~lo:(Receipt.view r) ~hi:max_int r with
            | Some (_, vcs) ->
                let senders =
                  Bitmap.of_list (List.map (fun vc -> vc.Message.vc_replica) vcs)
                in
                let blamed = Bitmap.inter senders (Receipt.signers r) in
                Error
                  (verdict t ~seqno:s
                     (Receipt_not_in_ledger
                        {
                          rn_receipt = r;
                          rn_case = `Receipt_view_higher;
                          rn_reason = "batch missing; a view-change quorum denied preparing it";
                        })
                     blamed)
            | None ->
                Error
                  (verdict t ~seqno:s
                     (Malformed_ledger
                        {
                          ml_responder = responder;
                          ml_reason = "ledger does not cover a valid receipt";
                          ml_index = 0;
                        })
                     Bitmap.empty))
        | Some bi ->
            if receipt_compatible r bi then go rest
            else begin
              let v_r = Receipt.view r and v_l = bi.bi_pp.Message.view in
              if v_l = v_r then begin
                match batch_signers scan s with
                | Some ledger_signers ->
                    let blamed = Bitmap.inter ledger_signers (Receipt.signers r) in
                    Error
                      (verdict t ~seqno:s
                         (Receipt_not_in_ledger
                            {
                              rn_receipt = r;
                              rn_case = `Same_view;
                              rn_reason =
                                "two quorums signed different batches in one view";
                            })
                         blamed)
                | None ->
                    Error
                      (verdict t ~seqno:s
                         (Malformed_ledger
                            {
                              ml_responder = responder;
                              ml_reason = "no evidence for the conflicting batch";
                              ml_index = bi.bi_pp_index;
                            })
                         Bitmap.empty)
              end
              else begin
                let lo, hi, case =
                  if v_l > v_r then (v_r, v_l, `Ledger_view_higher)
                  else (v_l, v_r, `Receipt_view_higher)
                in
                match find_contradicting_vc_set scan ~lo ~hi r with
                | Some (_, vcs) ->
                    let senders =
                      Bitmap.of_list (List.map (fun vc -> vc.Message.vc_replica) vcs)
                    in
                    let blamed = Bitmap.inter senders (Receipt.signers r) in
                    Error
                      (verdict t ~seqno:s
                         (Receipt_not_in_ledger
                            {
                              rn_receipt = r;
                              rn_case = case;
                              rn_reason =
                                "a view-change quorum omitted the prepared batch";
                            })
                         blamed)
                | None ->
                    Error
                      (verdict t ~seqno:s
                         (Malformed_ledger
                            {
                              ml_responder = responder;
                              ml_reason = "missing view-change messages for receipt views";
                              ml_index = bi.bi_pp_index;
                            })
                         Bitmap.empty)
              end
            end)
  in
  go receipts

(* ------------------------------------------------------------------ *)
(* Replay (Alg. 4, replayLedger)                                       *)

let replay_ledger t ~responder scan ~checkpoint =
  let store, start_seqno, cfg0 =
    match checkpoint with
    | None -> (Store.create (), 0, t.genesis.Genesis.initial_config)
    | Some cp ->
        let cfg =
          match Hamt.find App.config_key cp.Checkpoint.state with
          | Some bytes -> ( try Config.deserialize bytes with _ -> t.genesis.Genesis.initial_config)
          | None -> t.genesis.Genesis.initial_config
        in
        (Store.of_map cp.Checkpoint.state, cp.Checkpoint.seqno, cfg)
  in
  (* When starting from a checkpoint, its digest must be recorded by some
     checkpoint transaction in the ledger. *)
  (match checkpoint with
  | None -> Ok ()
  | Some cp ->
      let digest = Checkpoint.digest cp in
      let recorded =
        Hashtbl.fold
          (fun _ bi acc ->
            acc
            ||
            match bi.bi_pp.Message.kind with
            | Batch.Checkpoint { cp_seqno; cp_digest } ->
                cp_seqno = cp.Checkpoint.seqno && D.equal cp_digest digest
            | _ -> false)
          scan.sc_batches false
      in
      if recorded then Ok ()
      else
        Error
          (verdict t ~seqno:cp.Checkpoint.seqno
             (Malformed_ledger
                {
                  ml_responder = responder;
                  ml_reason = "checkpoint digest not recorded in the ledger";
                  ml_index = 0;
                })
             Bitmap.empty))
  |> function
  | Error _ as e -> e
  | Ok () ->
      let cfg = ref cfg0 in
      let cfg_pending = ref None in
      let replay_cps = Hashtbl.create 8 in
      let take_cp s =
        let cp = Checkpoint.make ~seqno:s (Store.map store) in
        Hashtbl.replace replay_cps s (Checkpoint.digest cp)
      in
      if start_seqno = 0 then take_cp 0;
      let blame_batch s =
        match batch_signers scan s with Some b -> b | None -> Bitmap.empty
      in
      let rec go s =
        if s > scan.sc_max_seqno then Ok ()
        else begin
          match Hashtbl.find_opt scan.sc_batches s with
          | None ->
              Error
                (verdict t ~seqno:s
                   (Malformed_ledger
                      {
                        ml_responder = responder;
                        ml_reason = Printf.sprintf "gap at sequence number %d" s;
                        ml_index = 0;
                      })
                   Bitmap.empty)
          | Some bi -> (
              (match !cfg_pending with
              | Some (activation, c) when s > activation ->
                  cfg := c;
                  cfg_pending := None
              | _ -> ());
              let exec_result =
                if s <= start_seqno then Ok ()
                else begin
                  let rec exec = function
                    | [] -> Ok ()
                    | (tx : Batch.tx_entry) :: rest ->
                        let output, wsh =
                          App.execute t.app ~config:!cfg
                            ~caller:tx.Batch.request.Request.client_pk ~store
                            ~proc:tx.Batch.request.Request.proc
                            ~args:tx.Batch.request.Request.args
                        in
                        if
                          String.equal output tx.Batch.result.Batch.output
                          && D.equal wsh tx.Batch.result.Batch.write_set_hash
                        then exec rest
                        else
                          Error
                            (verdict t ~seqno:s
                               (Wrong_execution
                                  {
                                    we_index = tx.Batch.index;
                                    we_seqno = s;
                                    we_reason = "replay result differs from the ledger";
                                  })
                               (blame_batch s))
                  in
                  exec bi.bi_txs
                end
              in
              match exec_result with
              | Error _ as e -> e
              | Ok () -> (
                  (* Track configuration changes driven by executed state. *)
                  (if s > start_seqno then begin
                     match Hamt.find App.config_key (Store.map store) with
                     | Some bytes -> (
                         match Config.deserialize bytes with
                         | exception _ -> ()
                         | c ->
                             if
                               c.Config.config_no > (!cfg).Config.config_no
                               && !cfg_pending = None
                             then cfg_pending := Some (s + (2 * t.pipeline), c)
                         )
                     | None -> ()
                   end);
                  (* Checkpoint transactions must record digests this replay
                     reproduces. *)
                  let cp_check =
                    match bi.bi_pp.Message.kind with
                    | Batch.Checkpoint { cp_seqno; cp_digest }
                      when s > start_seqno && cp_seqno > start_seqno -> (
                        match Hashtbl.find_opt replay_cps cp_seqno with
                        | Some own when D.equal own cp_digest -> Ok ()
                        | Some _ ->
                            Error
                              (verdict t ~seqno:s
                                 (Wrong_execution
                                    {
                                      we_index = bi.bi_pp_index;
                                      we_seqno = s;
                                      we_reason = "checkpoint digest mismatch";
                                    })
                                 (blame_batch s))
                        | None -> Ok () (* before our replay window *))
                    | _ -> Ok ()
                  in
                  match cp_check with
                  | Error _ as e -> e
                  | Ok () ->
                      if
                        s > start_seqno
                        && (s mod t.checkpoint_interval = 0
                           ||
                           match !cfg_pending with
                           | Some (activation, _) -> s = activation
                           | None -> false)
                      then take_cp s;
                      go (s + 1)))
        end
      in
      go (max 1 (start_seqno + 1))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let audit t ~receipts ~ledger ?checkpoint ~responder () =
  match audit_receipts t receipts with
  | Error _ as e -> e
  | Ok () -> (
      match scan_ledger t ~responder ledger with
      | Error _ as e -> e
      | Ok scan -> (
          match verify_receipts_in_ledger t ~responder scan receipts with
          | Error _ as e -> e
          | Ok () -> replay_ledger t ~responder scan ~checkpoint))

let pp_upom ppf = function
  | Invalid_receipt { ir_reason; _ } -> Format.fprintf ppf "invalid-receipt(%s)" ir_reason
  | Tied_receipts _ -> Format.pp_print_string ppf "tied-receipts"
  | Governance_fork _ -> Format.pp_print_string ppf "governance-fork"
  | Malformed_ledger { ml_reason; ml_index; _ } ->
      Format.fprintf ppf "malformed-ledger(%s@%d)" ml_reason ml_index
  | Receipt_not_in_ledger { rn_reason; _ } ->
      Format.fprintf ppf "receipt-not-in-ledger(%s)" rn_reason
  | Wrong_execution { we_index; we_reason; _ } ->
      Format.fprintf ppf "wrong-execution(i=%d,%s)" we_index we_reason

let pp_verdict ppf v =
  Format.fprintf ppf "%a blaming replicas %a (members: %s)" pp_upom v.v_upom
    Bitmap.pp v.v_blamed_replicas
    (String.concat "," v.v_blamed_members)
