(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected).

    Frames the durable ledger segments: every persisted entry carries the
    checksum of its payload so that torn or bit-rotted writes are detected
    on recovery rather than decoded into garbage. *)

val digest : string -> int
(** [digest s] is the CRC-32 of [s] as a non-negative int in [0, 2^32). *)

val digest_sub : string -> pos:int -> len:int -> int
(** CRC-32 of the [len] bytes of [s] starting at [pos]. *)

val update : int -> string -> pos:int -> len:int -> int
(** Streaming update: fold further bytes into a running checksum. *)
