(** Arbitrary-precision natural numbers.

    Little-endian arrays of 24-bit limbs over native ints, so schoolbook
    products and carry chains never overflow 63-bit arithmetic. This backs
    the Schnorr signature group arithmetic ({!Group}); the container has no
    [zarith], so the reproduction carries its own bignums. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** @raise Invalid_argument on negatives. *)

val to_int_opt : t -> int option
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] requires [a >= b]. @raise Invalid_argument otherwise. *)

val mul : t -> t -> t

val mul_small : t -> int -> t
(** [mul_small a m] with [0 <= m < 2^30]. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [r < b].
    @raise Division_by_zero if [b] is zero. *)

val rem : t -> t -> t
val bit_length : t -> int
val test_bit : t -> int -> bool
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val mask_bits : t -> int -> t
(** [mask_bits a n] is [a mod 2^n]. *)

val mod_pow : t -> t -> t -> t
(** [mod_pow b e m] is [b^e mod m] by square-and-multiply with generic
    division; a slow reference used by tests. {!Group} has the fast path. *)

val of_bytes_be : string -> t
val to_bytes_be : t -> string

val to_bytes_be_fixed : int -> t -> string
(** Left-zero-padded to exactly [len] bytes.
    @raise Invalid_argument if the value does not fit. *)

val of_hex : string -> t
val to_hex : t -> string
val pp : Format.formatter -> t -> unit
