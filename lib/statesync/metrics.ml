module Obs = Iaccf_obs.Obs

(* The statesync counter family, resolved once per replica so the hot
   paths bump cells directly. Names are the stable public surface asserted
   by tests and chaos scenarios. *)
type t = {
  chunks : Obs.counter;  (* snapshot chunks received *)
  bytes : Obs.counter;  (* snapshot bytes received *)
  offers : Obs.counter;  (* snapshot offers sent (server side) *)
  installs : Obs.counter;  (* verified snapshot installs *)
  verify_fail : Obs.counter;  (* snapshots rejected at install time *)
  entries_skipped : Obs.counter;  (* suffix entries adopted without re-execution *)
  snapshots_written : Obs.counter;  (* durable snapshot files persisted *)
  prune_entries : Obs.counter;  (* ledger entries dropped by compaction *)
  cold_snapshot_restore : Obs.counter;  (* cold starts resumed from a snapshot *)
  cold_genesis_replay : Obs.counter;  (* cold starts replayed from genesis *)
  duration_ms : Obs.Histogram.h;  (* offer-accept to install *)
}

let make obs =
  {
    chunks = Obs.counter obs "statesync.chunks";
    bytes = Obs.counter obs "statesync.bytes";
    offers = Obs.counter obs "statesync.offers";
    installs = Obs.counter obs "statesync.installs";
    verify_fail = Obs.counter obs "statesync.verify_fail";
    entries_skipped = Obs.counter obs "statesync.entries_skipped";
    snapshots_written = Obs.counter obs "statesync.snapshots_written";
    prune_entries = Obs.counter obs "statesync.prune.entries";
    cold_snapshot_restore = Obs.counter obs "statesync.cold.snapshot_restore";
    cold_genesis_replay = Obs.counter obs "statesync.cold.genesis_replay";
    duration_ms = Obs.histogram obs "statesync.duration_ms";
  }
