test/test_util.ml: Alcotest Bitmap Codec Fun Hex Iaccf_util List QCheck QCheck_alcotest Rng String Vec
