(** Zipfian rank sampler for key skew.

    Rank [i] (0-based) is drawn with probability proportional to
    [1 / (i+1)^theta]; [theta = 0] degenerates to uniform. The sampler
    precomputes the normalized cumulative distribution once (O(n) floats)
    and answers each draw with a binary search, so skewing a workload over
    hundreds of thousands of keys costs O(log n) per operation. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [n] ranks, default [theta] 0.99 (the YCSB constant).
    @raise Invalid_argument if [n <= 0] or [theta < 0]. *)

val n : t -> int
val theta : t -> float

val sample : t -> Iaccf_util.Rng.t -> int
(** A rank in [\[0, n)]; lower ranks are hotter for [theta > 0]. *)

val weight : t -> int -> float
(** The probability mass of a rank — strictly decreasing in rank when
    [theta > 0] (the property the QCheck tests pin down). *)
