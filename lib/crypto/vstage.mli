(** The batched, pool-backed signature-verification stage.

    Replica hot paths do not call {!Schnorr.verify} inline; they {!submit}
    jobs with completion callbacks and {!flush} once per delivered message.
    Three accelerations stack: a bounded LRU result cache keyed
    [(pk, digest, signature)], per-key fixed-base precomputation
    ({!Group.make_table}) for keys seen repeatedly, and — with
    [domains > 1] — the {!Parverify} domain pool for each flushed batch's
    cache misses.

    Determinism contract: with [domains <= 1] (the default), [submit]
    verifies inline and runs the callback before returning, byte-identical
    to unstaged code. With the pool enabled, callbacks are deferred to
    [flush] but always run in submission order, so a fixed seed still
    yields byte-identical simulation output; only wall-clock readings
    (Profile rows, {!queue_wait}) vary run to run. Obs counters and the
    batch-size histogram record only deterministic values. *)

type t

val create :
  ?domains:int ->
  ?cache_capacity:int ->
  ?obs:Iaccf_obs.Obs.t ->
  ?profile:Profile.t ->
  ?wall:(unit -> float) ->
  unit ->
  t
(** [domains] (default 0) > 1 enables pooled batching. [obs] (default: a
    private passive registry) receives the [crypto.cache.{hit,miss}],
    [crypto.pool.{jobs,batches}], [crypto.keys.precomputed] counters and
    the [crypto.pool.batch_size] histogram. [profile] is charged for every
    verification (amortized across a batch when pooled). [wall] (default
    [Sys.time]) feeds the queue-wait histogram only. *)

val pooled : t -> bool
(** Whether [domains > 1], i.e. submissions defer to {!flush}. *)

val domains : t -> int

val cache_hits : t -> int
val cache_misses : t -> int
(** Result-cache statistics (lifetime, from the underlying LRU). *)

val register : t -> Schnorr.public_key -> Schnorr.public_key
(** Intern a key known to verify constantly (replica keys at startup) and
    build its fixed-base table immediately; returns the canonical copy. *)

val verify_now :
  t ->
  cls:string ->
  principal:Profile.principal ->
  Schnorr.public_key ->
  string ->
  signature:string ->
  bool
(** Synchronous cache-checked verification — the inline-mode workhorse and
    the read side for bulk paths that {!prefetch}ed. *)

val submit :
  t ->
  cls:string ->
  principal:Profile.principal ->
  Schnorr.public_key ->
  string ->
  signature:string ->
  (bool -> unit) ->
  unit
(** Queue one verification with a completion callback. Inline mode runs
    the callback before returning; pooled mode defers it to {!flush}.
    Callbacks always fire in submission order. *)

val flush : t -> unit
(** Dispatch every pending submission's cache misses across the domain
    pool and run all pending callbacks, in submission order. Callbacks may
    submit follow-up jobs; [flush] drains until quiet. Reentrant calls and
    empty queues are no-ops. *)

val prefetch :
  t ->
  cls:string ->
  principal:Profile.principal ->
  (Schnorr.public_key * string * string) list ->
  unit
(** [(pk, digest, signature)] triples a bulk synchronous path is about to
    verify one by one: pool-verify the cache misses now so the following
    {!verify_now} loop hits the cache. No-op when not pooled. *)

val queue_wait : t -> Iaccf_obs.Obs.Histogram.h
(** Submit-to-callback wall-clock wait per job (ms), pooled mode only.
    Detached from the [obs] registry because its values are
    nondeterministic — registry snapshots must stay byte-identical for a
    fixed seed. *)
