lib/app/smallbank.ml: Iaccf_core Iaccf_kv Iaccf_util List Printf String
