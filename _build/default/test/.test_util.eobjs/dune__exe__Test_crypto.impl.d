test/test_crypto.ml: Alcotest Bignum Char Digest32 Group Hmac Iaccf_crypto Iaccf_util List Nonce Option Parverify Printf QCheck QCheck_alcotest Schnorr Sha256 String
