(* Minimal JSON parser and accessors. The toolchain ships no JSON
   library, and two consumers now need to *read* JSON rather than just
   emit it: [iaccf bench-report] aggregates the BENCH_*.json series the
   bench harness writes, and the trace tests schema-check the Chrome
   trace export. Recursive descent, strict enough for both: rejects
   trailing garbage, unterminated literals, and malformed escapes;
   numbers are parsed as OCaml floats (every value the emitters write). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf
    (fun msg -> raise (Parse_error (Printf.sprintf "at byte %d: %s" st.pos msg)))
    fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st "expected %c, found %c" c c'
  | None -> error st "expected %c, found end of input" c

let expect_literal st lit value =
  if
    st.pos + String.length lit <= String.length st.s
    && String.sub st.s st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    value
  end
  else error st "invalid literal"

(* UTF-8 encode a code point from a \uXXXX escape (surrogate pairs are
   combined by the caller). *)
let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> error st "invalid \\u escape"
        in
        v := (!v * 16) + d
    | None -> error st "truncated \\u escape");
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "truncated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = hex4 st in
                let cp =
                  (* High surrogate: a \uXXXX low surrogate must follow. *)
                  if cp >= 0xd800 && cp <= 0xdbff then begin
                    expect st '\\';
                    expect st 'u';
                    let lo = hex4 st in
                    if lo < 0xdc00 || lo > 0xdfff then
                      error st "invalid surrogate pair";
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  end
                  else cp
                in
                utf8_add buf cp
            | c -> error st "invalid escape \\%c" c);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_digits () =
    let any = ref false in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some '0' .. '9' ->
          any := true;
          advance st
      | _ -> continue := false
    done;
    !any
  in
  if peek st = Some '-' then advance st;
  if not (consume_digits ()) then error st "invalid number";
  (match peek st with
  | Some '.' ->
      advance st;
      if not (consume_digits ()) then error st "invalid number fraction"
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      if not (consume_digits ()) then error st "invalid number exponent"
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error st "unparseable number %s" text

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((key, v) :: acc))
          | _ -> error st "expected , or } in object"
        in
        members []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              Arr (List.rev (v :: acc))
          | _ -> error st "expected , or ] in array"
        in
        elements []
      end
  | Some 't' -> expect_literal st "true" (Bool true)
  | Some 'f' -> expect_literal st "false" (Bool false)
  | Some 'n' -> expect_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st "unexpected character %c" c

let parse_exn s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let parse_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* --------------------------------------------------------------- *)
(* Accessors                                                       *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_number = function Num f -> Some f | _ -> None
let to_obj = function Obj kvs -> Some kvs | _ -> None

let rec to_compact = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"';
      Buffer.contents buf
  | Arr xs -> "[" ^ String.concat "," (List.map to_compact xs) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> to_compact (Str k) ^ ":" ^ to_compact v) kvs)
      ^ "}"
