module Rng = Iaccf_util.Rng

type t = {
  n : int;
  theta : float;
  cum : float array;  (* normalized cumulative mass; empty when uniform *)
}

let create ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  if theta = 0.0 then { n; theta; cum = [||] }
  else begin
    let cum = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) theta);
      cum.(i) <- !acc
    done;
    let total = !acc in
    for i = 0 to n - 1 do
      cum.(i) <- cum.(i) /. total
    done;
    cum.(n - 1) <- 1.0;
    { n; theta; cum }
  end

let n t = t.n
let theta t = t.theta

let sample t rng =
  if t.theta = 0.0 then Rng.int rng t.n
  else begin
    let u = Rng.float rng 1.0 in
    (* smallest rank whose cumulative mass exceeds u *)
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cum.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo
  end

let weight t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.weight: rank out of range";
  if t.theta = 0.0 then 1.0 /. float_of_int t.n
  else if i = 0 then t.cum.(0)
  else t.cum.(i) -. t.cum.(i - 1)
