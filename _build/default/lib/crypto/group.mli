(** The multiplicative group used by {!Schnorr}.

    Arithmetic modulo the pseudo-Mersenne prime [p = 2^255 - 19] with fast
    reduction (a 510-bit product folds as [hi*19 + lo]). Exponents live
    modulo the group exponent [n = p - 1]. Simulation substitute for the
    paper's secp256k1: same 256-bit modular cost profile. *)

val p : Bignum.t
(** The field prime, [2^255 - 19]. *)

val n : Bignum.t
(** The exponent modulus, [p - 1]. *)

val g : Bignum.t
(** The fixed generator (2). *)

val reduce : Bignum.t -> Bignum.t
(** [reduce x] is [x mod p], using the pseudo-Mersenne fold. *)

val mul : Bignum.t -> Bignum.t -> Bignum.t
(** Product mod [p]. Arguments must already be reduced. *)

val pow : Bignum.t -> Bignum.t -> Bignum.t
(** [pow b e] is [b^e mod p] by square-and-multiply with fast reduction. *)

val pow_g : Bignum.t -> Bignum.t
(** [pow_g e] is [g^e mod p] using a precomputed fixed-base table
    (~2x faster than [pow g e]; used by signing). *)

val dual_pow_g : Bignum.t -> base:Bignum.t -> Bignum.t -> Bignum.t
(** [dual_pow_g a ~base b] is [g^a * base^b mod p] by simultaneous
    (Shamir) exponentiation; used by verification. *)

val scalar_of_bytes : string -> Bignum.t
(** Interpret bytes big-endian and reduce mod [n]. *)

val element_of_bytes : string -> Bignum.t option
(** Decode a 32-byte group element; [None] if out of range or zero. *)

val element_to_bytes : Bignum.t -> string
(** Fixed 32-byte big-endian encoding. *)
