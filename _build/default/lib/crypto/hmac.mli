(** HMAC-SHA256 (RFC 2104).

    Used for authenticated replica-to-replica channels (the paper sends all
    messages over authenticated connections, §3.4) and for deterministic
    signing nonces (RFC 6979 style). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 of [msg] under [key]. *)

val verify : key:string -> string -> mac:string -> bool
(** Constant-time comparison of [mac] against [mac ~key msg]. *)
