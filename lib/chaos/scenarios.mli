(** The scenario catalog.

    Three suites:
    - {b core} — crash/restart, primary failure, two-way and one-way
      partitions, and a message-loss ramp: the protocol must mask them
      all. Two overload cells drive open-loop traffic (lib/load) past the
      admission-control knee while a loss ramp or a primary crash lands
      mid-burst: the oracle must stay clean, the queue must shed with
      Busy rejections, and the generator's accounting must close
      (offered = committed once drained — nothing silently dropped).
    - {b byzantine} — below threshold, one scripted replica equivocates,
      tampers results, withholds nonces, or sends corrupt view changes
      (masked); above threshold, a colluding quorum forges wrong execution,
      history rewrites, view-change erasure, tied receipts, and a
      governance fork (each must yield an enforcer-verified uPoM blaming
      only culprits); and two observer faults — a frozen observer serving
      stale state and an observer forging read/status answers — both
      caught by the reader's receipt verification and freshness floor,
      with the consensus tier untouched.
    - {b recovery} — durable-store lifecycles: clean cold restarts, a
      mid-run storage crash, snapshot-based cold starts, and ledger
      compaction followed by a stale replica's snapshot catch-up; after
      each the service must stay live, auditable, and linearizable. *)

val core : Scenario.t list
val byzantine : Scenario.t list
val recovery : Scenario.t list
val all : Scenario.t list

val suite : Scenario.suite -> Scenario.t list

val smoke : Scenario.t list
(** One scenario per suite, for the default test run. *)

val find : string -> Scenario.t option
